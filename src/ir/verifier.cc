#include "ir/verifier.hh"

#include <unordered_set>

#include "support/logging.hh"

namespace vvsp
{

namespace
{

class Verifier
{
  public:
    explicit Verifier(const Function &fn) : fn_(fn) {}

    std::vector<std::string>
    run()
    {
        walk(fn_.body, 0);
        return std::move(problems_);
    }

  private:
    void
    problem(const std::string &msg)
    {
        problems_.push_back(fn_.name + ": " + msg);
    }

    void
    checkUse(const Operand &o, const Operation &op)
    {
        if (o.isReg() && !defined_.count(o.reg)) {
            problem("use of undefined v" + std::to_string(o.reg) +
                    " in '" + op.str() + "'");
        }
    }

    void
    checkOp(const Operation &op)
    {
        const OpcodeInfo &inf = op.info();
        if (inf.hasDst && op.dst == kNoVreg)
            problem("missing dst in '" + op.str() + "'");
        if (!inf.hasDst && op.dst != kNoVreg)
            problem("unexpected dst in '" + op.str() + "'");
        for (int i = 0; i < 3; ++i) {
            const Operand &s = op.src[static_cast<size_t>(i)];
            bool architected = i < inf.numSrcs;
            // Memory addresses may omit the second component.
            bool optional_addr =
                (op.op == Opcode::Load && i == 1) ||
                (op.op == Opcode::Store && i == 2);
            if (architected && s.isNone() && !optional_addr) {
                problem("missing src" + std::to_string(i) + " in '" +
                        op.str() + "'");
            }
            if (!architected && !s.isNone()) {
                problem("extra src" + std::to_string(i) + " in '" +
                        op.str() + "'");
            }
            if (!s.isNone())
                checkUse(s, op);
        }
        if (inf.isMemory) {
            if (op.buffer < 0 ||
                op.buffer >= static_cast<int>(fn_.buffers.size())) {
                problem("bad buffer in '" + op.str() + "'");
            }
        } else if (op.buffer >= 0) {
            problem("buffer on non-memory op '" + op.str() + "'");
        }
        if (!op.pred.isNone()) {
            if (!op.pred.isReg())
                problem("non-register predicate in '" + op.str() + "'");
            else
                checkUse(op.pred, op);
        }
        if (inf.hasDst)
            defined_.insert(op.dst);
    }

    void
    walk(const NodeList &list, int loop_depth)
    {
        for (const auto &n : list) {
            switch (n->kind()) {
              case NodeKind::Block:
                for (const auto &op :
                     static_cast<const BlockNode &>(*n).ops) {
                    checkOp(op);
                }
                break;
              case NodeKind::Loop: {
                const auto &loop = static_cast<const LoopNode &>(*n);
                if (loop.ivInit.isReg() &&
                    !defined_.count(loop.ivInit.reg)) {
                    problem("loop '" + loop.label +
                            "' initial induction value v" +
                            std::to_string(loop.ivInit.reg) +
                            " undefined");
                }
                if (loop.ivInit.isReg() &&
                    loop.boundVreg == kNoVreg &&
                    loop.tripCount >= 0) {
                    problem("pointer loop '" + loop.label +
                            "' needs a precomputed bound register");
                }
                if (loop.boundVreg != kNoVreg &&
                    !defined_.count(loop.boundVreg)) {
                    problem("loop '" + loop.label + "' bound v" +
                            std::to_string(loop.boundVreg) +
                            " undefined");
                }
                if (loop.inductionVar != kNoVreg)
                    defined_.insert(loop.inductionVar);
                bool has_break = false;
                forEachNode(loop.body, [&has_break](const Node &m) {
                    if (m.kind() == NodeKind::Break)
                        has_break = true;
                });
                if (loop.tripCount < 0 && !has_break)
                    problem("dynamic loop '" + loop.label +
                            "' has no break");
                walk(loop.body, loop_depth + 1);
                break;
              }
              case NodeKind::If: {
                const auto &iff = static_cast<const IfNode &>(*n);
                if (!iff.cond.isReg() && !iff.cond.isImm())
                    problem("if without a condition");
                walk(iff.thenBody, loop_depth);
                walk(iff.elseBody, loop_depth);
                break;
              }
              case NodeKind::Break: {
                const auto &brk = static_cast<const BreakNode &>(*n);
                if (loop_depth == 0)
                    problem("break outside of a loop");
                if (!brk.cond.isNone() && !brk.cond.isReg())
                    problem("break with a non-register condition");
                break;
              }
            }
        }
    }

    const Function &fn_;
    std::unordered_set<Vreg> defined_;
    std::vector<std::string> problems_;
};

} // anonymous namespace

std::vector<std::string>
verify(const Function &fn)
{
    return Verifier(fn).run();
}

void
verifyOrDie(const Function &fn)
{
    auto problems = verify(fn);
    if (!problems.empty()) {
        vvsp_panic("IR verification failed (%zu problems), first: %s",
                   problems.size(), problems.front().c_str());
    }
}

} // namespace vvsp
