/**
 * @file
 * A single VLIW operation on virtual registers.
 *
 * Code is built in an SSA-like style over an unbounded pool of
 * virtual 16-bit registers; register-capacity limits are enforced by
 * the MaxLive analysis against the cluster's register file, as the
 * paper does when a schedule "requires more registers than are
 * available in one cluster".
 */

#ifndef VVSP_IR_OPERATION_HH
#define VVSP_IR_OPERATION_HH

#include <array>
#include <cstdint>
#include <string>

#include "ir/opcode.hh"

namespace vvsp
{

/** Virtual register number. */
using Vreg = uint32_t;

/** Sentinel for "no register". */
constexpr Vreg kNoVreg = ~0u;

/** A source operand: register, immediate, or absent. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm };

    Kind kind = Kind::None;
    Vreg reg = kNoVreg;
    int32_t imm = 0;

    static Operand none() { return {}; }
    static Operand ofReg(Vreg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }
    static Operand ofImm(int32_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isNone() const { return kind == Kind::None; }
    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }

    bool operator==(const Operand &o) const
    {
        if (kind != o.kind)
            return false;
        if (kind == Kind::Reg)
            return reg == o.reg;
        if (kind == Kind::Imm)
            return imm == o.imm;
        return true;
    }

    std::string str() const;
};

/**
 * One operation. Memory operations reference a named buffer in the
 * cluster's local data RAM; the effective word address is the sum of
 * the address operands (Load: src0 + src1, Store: src1 + src2).
 * An address with two non-zero components (register+register or
 * register+displacement) requires the complex addressing modes.
 */
struct Operation
{
    Opcode op = Opcode::Nop;
    Vreg dst = kNoVreg;
    std::array<Operand, 3> src{};

    /** Guard predicate; the op is nullified when pred != predSense. */
    Operand pred = Operand::none();
    bool predSense = true;

    /** Memory buffer id for Load/Store. */
    int buffer = -1;
    /**
     * Memory-disambiguation token: accesses to the same buffer with
     * different tokens are guaranteed disjoint by the kernel author
     * (knowledge "derived from the code specification").
     */
    int aliasToken = 0;
    /**
     * True when successive loop iterations of this access never
     * touch the same word (streaming access) - removes loop-carried
     * memory dependences in the modulo scheduler.
     */
    bool noCarriedAlias = false;

    /** Cluster assignment (filled by the cluster assigner). */
    int cluster = 0;
    /** For Xfer: destination cluster. */
    int dstCluster = 0;

    /** Unique id within the function (set by the builder). */
    int id = -1;

    const OpcodeInfo &info() const { return opcodeInfo(op); }
    bool isPredicated() const { return !pred.isNone(); }

    /** Printable form, e.g. "v7 = add v3, #4 if v9". */
    std::string str() const;
};

} // namespace vvsp

#endif // VVSP_IR_OPERATION_HH
