/**
 * @file
 * IR well-formedness checks, run after construction and after every
 * transformation pass.
 */

#ifndef VVSP_IR_VERIFIER_HH
#define VVSP_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/function.hh"

namespace vvsp
{

/**
 * Verify a function:
 *  - operand arity and kinds match each opcode,
 *  - destinations present exactly when the opcode produces one,
 *  - memory operations reference declared buffers,
 *  - every register use is preceded (in pre-order) by a definition
 *    or is the induction variable of an enclosing loop,
 *  - dynamic loops contain a Break, Breaks sit inside loops,
 *  - predicates are registers.
 *
 * Returns the list of problems (empty when well-formed).
 */
std::vector<std::string> verify(const Function &fn);

/** Verify and panic with the first problem if any (for tests/passes). */
void verifyOrDie(const Function &fn);

} // namespace vvsp

#endif // VVSP_IR_VERIFIER_HH
