/**
 * @file
 * Data-dependence graph over the operations of one block.
 *
 * Built for both acyclic (list) scheduling and modulo scheduling:
 * every edge carries a latency and an iteration distance (0 for
 * intra-iteration, >= 1 for loop-carried). Register dependences are
 * exact; memory dependences are conservative within a
 * (buffer, aliasToken) class, with kernel-declared streaming
 * accesses (noCarriedAlias) exempt from loop-carried edges.
 */

#ifndef VVSP_IR_DEPENDENCE_GRAPH_HH
#define VVSP_IR_DEPENDENCE_GRAPH_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/operation.hh"

namespace vvsp
{

/** Dependence kinds. */
enum class DepKind : uint8_t
{
    True,   ///< read after write.
    Anti,   ///< write after read.
    Output, ///< write after write.
    Memory, ///< ordering between memory operations.
};

/** One dependence edge between operation indices within a block. */
struct DepEdge
{
    int from = -1;
    int to = -1;
    int latency = 0;  ///< min cycles from issue(from) to issue(to).
    int distance = 0; ///< iteration distance (modulo scheduling).
    DepKind kind = DepKind::True;
};

/** Returns the result latency of an operation on the target machine. */
using LatencyFn = std::function<int(const Operation &)>;

/** Dependence graph for one block of operations. */
class DependenceGraph
{
  public:
    /**
     * Build the graph. When loopCarried is set, cross-iteration
     * register and memory dependences (distance 1) are added for
     * values that are live around the back edge.
     */
    DependenceGraph(const std::vector<Operation> &ops,
                    const LatencyFn &latency, bool loop_carried);

    size_t numOps() const { return num_ops_; }
    const std::vector<DepEdge> &edges() const { return edges_; }

    /** Edges into / out of an operation index. */
    const std::vector<int> &predEdges(int op) const;
    const std::vector<int> &succEdges(int op) const;

    /**
     * Length (in cycles) of the longest latency path from this op to
     * any graph sink, counting only distance-0 edges; the classic
     * list-scheduling height priority.
     */
    int height(int op) const;

    /** Longest distance-0 latency path in the graph (critical path). */
    int criticalPathLength() const;

    /**
     * Minimum initiation interval forced by dependence recurrences:
     * max over cycles of ceil(latency_sum / distance_sum)
     * (Rau's RecMII).
     */
    int recurrenceMii() const;

    std::string str() const;

  private:
    void addEdge(int from, int to, int latency, int distance,
                 DepKind kind);
    void computeHeights();

    size_t num_ops_;
    std::vector<DepEdge> edges_;
    /** (from, to, distance, kind) -> edge index, for O(1) dedup. */
    std::unordered_map<uint64_t, int> edge_index_;
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
    std::vector<int> heights_;
};

} // namespace vvsp

#endif // VVSP_IR_DEPENDENCE_GRAPH_HH
