/**
 * @file
 * Data-dependence graph over the operations of one block.
 *
 * Built for both acyclic (list) scheduling and modulo scheduling:
 * every edge carries a latency and an iteration distance (0 for
 * intra-iteration, >= 1 for loop-carried). Register dependences are
 * exact; memory dependences are conservative within a
 * (buffer, aliasToken) class, with kernel-declared streaming
 * accesses (noCarriedAlias) exempt from loop-carried edges.
 *
 * The graph is stored structure-of-arrays for the scheduler hot
 * path: adjacency is compressed-sparse-row (one flat edge-index
 * array per direction plus per-op offsets), operation latencies are
 * computed once per op instead of once per edge, and a graph object
 * can be rebuilt in place (`build()`), reusing every internal buffer
 * so a sweep's thousands of graph constructions do near-zero heap
 * churn.
 */

#ifndef VVSP_IR_DEPENDENCE_GRAPH_HH
#define VVSP_IR_DEPENDENCE_GRAPH_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/operation.hh"

namespace vvsp
{

/** Dependence kinds. */
enum class DepKind : uint8_t
{
    True,   ///< read after write.
    Anti,   ///< write after read.
    Output, ///< write after write.
    Memory, ///< ordering between memory operations.
};

/** One dependence edge between operation indices within a block. */
struct DepEdge
{
    int from = -1;
    int to = -1;
    int latency = 0;  ///< min cycles from issue(from) to issue(to).
    int distance = 0; ///< iteration distance (modulo scheduling).
    DepKind kind = DepKind::True;
};

/** Returns the result latency of an operation on the target machine. */
using LatencyFn = std::function<int(const Operation &)>;

/**
 * Contiguous run of edge indices (one op's CSR adjacency row).
 * Iterates like the std::vector<int> it replaced.
 */
class EdgeIndexRange
{
  public:
    EdgeIndexRange(const int32_t *begin, const int32_t *end)
        : begin_(begin), end_(end)
    {
    }

    const int32_t *begin() const { return begin_; }
    const int32_t *end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }

  private:
    const int32_t *begin_;
    const int32_t *end_;
};

/** Dependence graph for one block of operations. */
class DependenceGraph
{
  public:
    /** An empty graph; call build() before use. */
    DependenceGraph() = default;

    /**
     * Build the graph. When loopCarried is set, cross-iteration
     * register and memory dependences (distance 1) are added for
     * values that are live around the back edge.
     */
    DependenceGraph(const std::vector<Operation> &ops,
                    const LatencyFn &latency, bool loop_carried);

    /**
     * Rebuild in place for a new block, reusing the previous build's
     * buffers (the pooled-reuse path for scheduler-owned graphs).
     */
    void build(const std::vector<Operation> &ops,
               const LatencyFn &latency, bool loop_carried);

    size_t numOps() const { return num_ops_; }
    const std::vector<DepEdge> &edges() const { return edges_; }

    /** Edges into / out of an operation index. */
    EdgeIndexRange predEdges(int op) const;
    EdgeIndexRange succEdges(int op) const;

    /**
     * Length (in cycles) of the longest latency path from this op to
     * any graph sink, counting only distance-0 edges; the classic
     * list-scheduling height priority.
     */
    int height(int op) const;

    /** Longest distance-0 latency path in the graph (critical path). */
    int criticalPathLength() const;

    /**
     * Minimum initiation interval forced by dependence recurrences:
     * max over cycles of ceil(latency_sum / distance_sum)
     * (Rau's RecMII).
     */
    int recurrenceMii() const;

    std::string str() const;

  private:
    void addEdge(int from, int to, int latency, int distance,
                 DepKind kind);
    void buildCsr();
    void computeHeights();
    bool relaxationFeasible(int ii) const;

    size_t num_ops_ = 0;
    std::vector<DepEdge> edges_;
    /** (from, to, distance, kind) -> edge index, for O(1) dedup. */
    std::unordered_map<uint64_t, int> edge_index_;

    /**
     * CSR adjacency: op i's successor edge indices live in
     * succCsr_[succOff_[i] .. succOff_[i+1]), in edge-creation order
     * (identical to the per-op vectors they replaced); same for
     * predecessors.
     */
    std::vector<int32_t> succOff_;
    std::vector<int32_t> succCsr_;
    std::vector<int32_t> predOff_;
    std::vector<int32_t> predCsr_;

    std::vector<int> heights_;
    /** Per-op result latency, computed once per build. */
    std::vector<int> opLatency_;
    /** recurrenceMii scratch (reused across feasibility probes). */
    mutable std::vector<int> bfDist_;
};

} // namespace vvsp

#endif // VVSP_IR_DEPENDENCE_GRAPH_HH
