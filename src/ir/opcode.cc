#include "ir/opcode.hh"

#include "support/logging.hh"

namespace vvsp
{

namespace
{

const OpcodeInfo kInfo[] = {
    // name       fuClass           srcs dst   cmp    mem    br
    {"nop",      FuClass::None,    0, false, false, false, false},
    {"mov",      FuClass::Alu,     1, true,  false, false, false},
    {"add",      FuClass::Alu,     2, true,  false, false, false},
    {"sub",      FuClass::Alu,     2, true,  false, false, false},
    {"abs",      FuClass::Alu,     1, true,  false, false, false},
    {"absdiff",  FuClass::Alu,     2, true,  false, false, false},
    {"min",      FuClass::Alu,     2, true,  false, false, false},
    {"max",      FuClass::Alu,     2, true,  false, false, false},
    {"and",      FuClass::Alu,     2, true,  false, false, false},
    {"or",       FuClass::Alu,     2, true,  false, false, false},
    {"xor",      FuClass::Alu,     2, true,  false, false, false},
    {"not",      FuClass::Alu,     1, true,  false, false, false},
    {"neg",      FuClass::Alu,     1, true,  false, false, false},
    {"cmpeq",    FuClass::Alu,     2, true,  true,  false, false},
    {"cmpne",    FuClass::Alu,     2, true,  true,  false, false},
    {"cmplt",    FuClass::Alu,     2, true,  true,  false, false},
    {"cmple",    FuClass::Alu,     2, true,  true,  false, false},
    {"cmpgt",    FuClass::Alu,     2, true,  true,  false, false},
    {"cmpge",    FuClass::Alu,     2, true,  true,  false, false},
    {"cmpltu",   FuClass::Alu,     2, true,  true,  false, false},
    {"select",   FuClass::Alu,     3, true,  false, false, false},
    {"shl",      FuClass::Shift,   2, true,  false, false, false},
    {"shr",      FuClass::Shift,   2, true,  false, false, false},
    {"sra",      FuClass::Shift,   2, true,  false, false, false},
    {"mul8",     FuClass::Mult,    2, true,  false, false, false},
    {"mulu8",    FuClass::Mult,    2, true,  false, false, false},
    {"muluu8",   FuClass::Mult,    2, true,  false, false, false},
    {"mul16lo",  FuClass::Mult,    2, true,  false, false, false},
    {"mul16hi",  FuClass::Mult,    2, true,  false, false, false},
    {"load",     FuClass::Mem,     2, true,  false, true,  false},
    {"store",    FuClass::Mem,     3, false, false, true,  false},
    {"xfer",     FuClass::Xbar,    1, true,  false, false, false},
    {"br",       FuClass::Branch,  0, false, false, false, true},
    {"brcond",   FuClass::Branch,  1, false, false, false, true},
};

} // anonymous namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    vvsp_assert(idx < sizeof(kInfo) / sizeof(kInfo[0]),
                "opcode %zu out of table", idx);
    return kInfo[idx];
}

std::string
opcodeName(Opcode op)
{
    return opcodeInfo(op).name;
}

} // namespace vvsp
