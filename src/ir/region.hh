/**
 * @file
 * Structured intermediate representation.
 *
 * A kernel is a tree of regions rather than an arbitrary CFG: video
 * kernels are structured loop nests, and a structured form makes
 * loop unrolling, interchange, and if-conversion direct while still
 * expressing the data-dependent control of the VBR coder (If and
 * conditional Break nodes inside dynamic loops).
 */

#ifndef VVSP_IR_REGION_HH
#define VVSP_IR_REGION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/operation.hh"

namespace vvsp
{

class Node;
using NodePtr = std::unique_ptr<Node>;
using NodeList = std::vector<NodePtr>;

/** Node kinds of the structured IR tree. */
enum class NodeKind : uint8_t
{
    Block, ///< straight-line (possibly predicated) operations.
    Loop,  ///< counted or dynamic loop.
    If,    ///< two-armed conditional.
    Break, ///< exit the innermost enclosing loop (optionally guarded).
};

/** A node in the structured IR tree. */
class Node
{
  public:
    explicit Node(NodeKind kind) : kind_(kind) {}
    virtual ~Node() = default;

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    NodeKind kind() const { return kind_; }

    /** Unique id within the function (assigned by the builder). */
    int id = -1;
    /** Optional human-readable label. */
    std::string label;

    /** Deep copy (fresh node, same ids; builder can renumber). */
    virtual NodePtr clone() const = 0;

    /** Multi-line printable form. */
    virtual std::string str(int indent = 0) const = 0;

  private:
    NodeKind kind_;
};

/** Straight-line code. */
class BlockNode : public Node
{
  public:
    BlockNode() : Node(NodeKind::Block) {}

    std::vector<Operation> ops;

    NodePtr clone() const override;
    std::string str(int indent = 0) const override;
};

/**
 * A loop. Counted loops (tripCount >= 0) expose their trip count to
 * the unroller and the frame composer; dynamic loops (tripCount < 0)
 * iterate until a Break fires. The induction variable, when present,
 * reads 0, step, 2*step, ... in successive iterations; its update,
 * compare, and back-edge branch are materialized by the scheduler's
 * loop lowering so that transformations never have to repair them.
 */
class LoopNode : public Node
{
  public:
    LoopNode() : Node(NodeKind::Loop) {}

    /** Static trip count, or -1 for a dynamic (while) loop. */
    long tripCount = -1;
    /** Induction register, or kNoVreg. */
    Vreg inductionVar = kNoVreg;
    /** Induction step per iteration. */
    int step = 1;
    /**
     * Initial induction value (default 0). A register initial value
     * expresses strength-reduced pointer loops (the induction
     * variable IS the array pointer); such loops must also set
     * boundVreg so the loop-close compare has an end pointer.
     */
    Operand ivInit = Operand::ofImm(0);
    /**
     * Precomputed loop bound (ivInit + tripCount*step), required
     * when ivInit is a register; kNoVreg otherwise.
     */
    Vreg boundVreg = kNoVreg;
    /**
     * True when iterations are independent (a do-all loop): the
     * cluster assigner may replicate such loops SIMD-style across
     * clusters (Sec. 3.3).
     */
    bool isDoAll = false;

    NodeList body;

    NodePtr clone() const override;
    std::string str(int indent = 0) const override;
};

/** Two-armed conditional on a register (or immediate) condition. */
class IfNode : public Node
{
  public:
    IfNode() : Node(NodeKind::If) {}

    Operand cond = Operand::none();
    /** Condition sense: take thenBody when (cond != 0) == sense. */
    bool sense = true;

    NodeList thenBody;
    NodeList elseBody;

    NodePtr clone() const override;
    std::string str(int indent = 0) const override;
};

/** Exit the innermost loop, optionally guarded by a condition. */
class BreakNode : public Node
{
  public:
    BreakNode() : Node(NodeKind::Break) {}

    /** Break fires when cond is absent, or (cond != 0) == sense. */
    Operand cond = Operand::none();
    bool sense = true;

    NodePtr clone() const override;
    std::string str(int indent = 0) const override;
};

/** Deep-copy a node list. */
NodeList cloneList(const NodeList &list);

/** Visit every node in a list, pre-order. */
void forEachNode(const NodeList &list,
                 const std::function<void(const Node &)> &fn);

/** Visit every node in a list, pre-order (mutable). */
void forEachNode(NodeList &list, const std::function<void(Node &)> &fn);

} // namespace vvsp

#endif // VVSP_IR_REGION_HH
