#include "ir/dependence_graph.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace vvsp
{

namespace
{

/** True when two writes can commit in the same cycle (complementary
 *  predicates guarantee only one retires). */
bool
complementaryPreds(const Operation &a, const Operation &b)
{
    return a.isPredicated() && b.isPredicated() &&
           a.pred == b.pred && a.predSense != b.predSense;
}

} // anonymous namespace

DependenceGraph::DependenceGraph(const std::vector<Operation> &ops,
                                 const LatencyFn &latency,
                                 bool loop_carried)
    : num_ops_(ops.size()), preds_(ops.size()), succs_(ops.size())
{
    const int n = static_cast<int>(ops.size());

    // Per-register writer/reader tracking. `readers` is pruned at
    // unconditional kills (it only feeds anti-dependences);
    // `all_readers` keeps every read for the loop-carried analysis.
    std::map<Vreg, std::vector<int>> writers;
    std::map<Vreg, std::vector<int>> readers;
    std::map<Vreg, std::vector<int>> all_readers;

    auto reads = [&](const Operation &op, const std::function<void(Vreg)>
                                              &fn) {
        for (const auto &s : op.src) {
            if (s.isReg())
                fn(s.reg);
        }
        if (op.pred.isReg())
            fn(op.pred.reg);
    };

    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[static_cast<size_t>(i)];

        reads(op, [&](Vreg r) {
            for (int w : writers[r]) {
                addEdge(w, i, latency(ops[static_cast<size_t>(w)]), 0,
                        DepKind::True);
            }
            readers[r].push_back(i);
            all_readers[r].push_back(i);
        });

        if (op.info().hasDst) {
            Vreg d = op.dst;
            for (int rd : readers[d]) {
                if (rd != i)
                    addEdge(rd, i, 0, 0, DepKind::Anti);
            }
            for (int w : writers[d]) {
                int lat = complementaryPreds(
                              ops[static_cast<size_t>(w)], op)
                              ? 0
                              : 1;
                addEdge(w, i, lat, 0, DepKind::Output);
            }
            if (op.isPredicated()) {
                writers[d].push_back(i);
            } else {
                writers[d] = {i};
                readers[d].clear();
            }
        }
    }

    // Memory ordering per (buffer, aliasToken).
    std::map<std::pair<int, int>, std::vector<int>> mem_ops;
    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[static_cast<size_t>(i)];
        if (op.info().isMemory)
            mem_ops[{op.buffer, op.aliasToken}].push_back(i);
    }
    for (const auto &[key, idxs] : mem_ops) {
        for (size_t a = 0; a < idxs.size(); ++a) {
            for (size_t b = a + 1; b < idxs.size(); ++b) {
                const Operation &oa = ops[static_cast<size_t>(idxs[a])];
                const Operation &ob = ops[static_cast<size_t>(idxs[b])];
                bool a_store = oa.op == Opcode::Store;
                bool b_store = ob.op == Opcode::Store;
                if (!a_store && !b_store)
                    continue; // load-load: no ordering needed.
                int lat = a_store && !b_store ? 1 : (a_store ? 1 : 0);
                addEdge(idxs[a], idxs[b], lat, 0, DepKind::Memory);
            }
        }
    }

    if (loop_carried) {
        // Register values live around the back edge: a reader at or
        // before a writer consumes the previous iteration's value.
        for (const auto &[r, ws] : writers) {
            auto rit = all_readers.find(r);
            if (rit == all_readers.end())
                continue;
            for (int w : ws) {
                for (int rd : rit->second) {
                    if (rd <= w) {
                        addEdge(w, rd,
                                latency(ops[static_cast<size_t>(w)]), 1,
                                DepKind::True);
                    }
                }
            }
        }
        // Conservative carried memory dependences, unless both ends
        // are declared streaming.
        for (const auto &[key, idxs] : mem_ops) {
            for (int a : idxs) {
                for (int b : idxs) {
                    const Operation &oa =
                        ops[static_cast<size_t>(a)];
                    const Operation &ob =
                        ops[static_cast<size_t>(b)];
                    bool a_store = oa.op == Opcode::Store;
                    bool b_store = ob.op == Opcode::Store;
                    if (!a_store && !b_store)
                        continue;
                    if (oa.noCarriedAlias && ob.noCarriedAlias)
                        continue;
                    addEdge(a, b, a_store ? 1 : 0, 1, DepKind::Memory);
                }
            }
        }
    }

    computeHeights();
}

void
DependenceGraph::addEdge(int from, int to, int latency, int distance,
                         DepKind kind)
{
    vvsp_assert(distance > 0 || from < to || (from == to && distance > 0),
                "distance-0 edge must run forward (%d -> %d)", from, to);
    // Drop exact duplicates (common with multi-writer tracking).
    for (const auto &e : edges_) {
        if (e.from == from && e.to == to && e.distance == distance &&
            e.kind == kind && e.latency >= latency) {
            return;
        }
    }
    int idx = static_cast<int>(edges_.size());
    edges_.push_back(DepEdge{from, to, latency, distance, kind});
    succs_[static_cast<size_t>(from)].push_back(idx);
    preds_[static_cast<size_t>(to)].push_back(idx);
}

const std::vector<int> &
DependenceGraph::predEdges(int op) const
{
    return preds_[static_cast<size_t>(op)];
}

const std::vector<int> &
DependenceGraph::succEdges(int op) const
{
    return succs_[static_cast<size_t>(op)];
}

void
DependenceGraph::computeHeights()
{
    // Distance-0 edges always run forward in index order, so reverse
    // index order is a reverse topological order.
    heights_.assign(num_ops_, 1);
    for (int i = static_cast<int>(num_ops_) - 1; i >= 0; --i) {
        for (int e : succs_[static_cast<size_t>(i)]) {
            const DepEdge &edge = edges_[static_cast<size_t>(e)];
            if (edge.distance != 0)
                continue;
            heights_[static_cast<size_t>(i)] = std::max(
                heights_[static_cast<size_t>(i)],
                edge.latency + heights_[static_cast<size_t>(edge.to)]);
        }
    }
}

int
DependenceGraph::height(int op) const
{
    return heights_[static_cast<size_t>(op)];
}

int
DependenceGraph::criticalPathLength() const
{
    int best = 0;
    for (int h : heights_)
        best = std::max(best, h);
    return best;
}

int
DependenceGraph::recurrenceMii() const
{
    if (num_ops_ == 0)
        return 1;
    int max_lat_sum = 1;
    for (const auto &e : edges_)
        max_lat_sum += e.latency;

    // Smallest II such that no cycle has positive (latency - II*dist)
    // weight; checked with Bellman-Ford on longest paths.
    for (int ii = 1; ii <= max_lat_sum; ++ii) {
        std::vector<int> dist(num_ops_, 0);
        bool changed = true;
        bool positive_cycle = false;
        for (size_t iter = 0; iter <= num_ops_ && changed; ++iter) {
            changed = false;
            for (const auto &e : edges_) {
                int w = e.latency - ii * e.distance;
                int cand = dist[static_cast<size_t>(e.from)] + w;
                if (cand > dist[static_cast<size_t>(e.to)]) {
                    dist[static_cast<size_t>(e.to)] = cand;
                    changed = true;
                    if (iter == num_ops_)
                        positive_cycle = true;
                }
            }
        }
        if (!positive_cycle && !changed)
            return ii;
    }
    return max_lat_sum;
}

std::string
DependenceGraph::str() const
{
    std::ostringstream os;
    static const char *names[] = {"true", "anti", "out", "mem"};
    for (const auto &e : edges_) {
        os << e.from << " -> " << e.to << " ["
           << names[static_cast<size_t>(e.kind)] << " lat=" << e.latency
           << " dist=" << e.distance << "]\n";
    }
    return os.str();
}

} // namespace vvsp
