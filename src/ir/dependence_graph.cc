#include "ir/dependence_graph.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "support/logging.hh"

namespace vvsp
{

namespace
{

/** True when two writes can commit in the same cycle (complementary
 *  predicates guarantee only one retires). */
bool
complementaryPreds(const Operation &a, const Operation &b)
{
    return a.isPredicated() && b.isPredicated() &&
           a.pred == b.pred && a.predSense != b.predSense;
}

/** Exact pack of an edge identity (from, to, distance, kind). */
uint64_t
edgeKey(int from, int to, int distance, DepKind kind)
{
    vvsp_assert(from >= 0 && from < (1 << 28) && to >= 0 &&
                    to < (1 << 28) && distance >= 0 && distance < 4,
                "edge key overflow (%d -> %d dist %d)", from, to,
                distance);
    return (static_cast<uint64_t>(from) << 34) |
           (static_cast<uint64_t>(to) << 6) |
           (static_cast<uint64_t>(distance) << 2) |
           static_cast<uint64_t>(kind);
}

/** Per-register dependence state, indexed directly by vreg. */
struct RegState
{
    std::vector<int> writers;
    std::vector<int> readers;     ///< pruned at unconditional kills.
    std::vector<int> all_readers; ///< kept for carried analysis.
};

/** Memory-ordering chain state for one (buffer, aliasToken) class. */
struct MemChain
{
    int buffer = 0;
    int aliasToken = 0;
    int lastStore = -1;
    std::vector<int> readersSinceStore;
    std::vector<int> allOps; ///< for the carried all-pairs pass.
};

} // anonymous namespace

DependenceGraph::DependenceGraph(const std::vector<Operation> &ops,
                                 const LatencyFn &latency,
                                 bool loop_carried)
{
    build(ops, latency, loop_carried);
}

void
DependenceGraph::build(const std::vector<Operation> &ops,
                       const LatencyFn &latency, bool loop_carried)
{
    num_ops_ = ops.size();
    edges_.clear();
    edge_index_.clear();
    edge_index_.reserve(ops.size() * 4);

    const int n = static_cast<int>(ops.size());
    opLatency_.resize(ops.size());
    for (int i = 0; i < n; ++i)
        opLatency_[static_cast<size_t>(i)] =
            latency(ops[static_cast<size_t>(i)]);

    Vreg max_reg = 0;
    for (const auto &op : ops) {
        if (op.info().hasDst)
            max_reg = std::max(max_reg, op.dst);
        for (const auto &s : op.src) {
            if (s.isReg())
                max_reg = std::max(max_reg, s.reg);
        }
        if (op.pred.isReg())
            max_reg = std::max(max_reg, op.pred.reg);
    }
    std::vector<RegState> regs(static_cast<size_t>(max_reg) + 1);

    auto reads = [&](const Operation &op, auto &&fn) {
        for (const auto &s : op.src) {
            if (s.isReg())
                fn(s.reg);
        }
        if (op.pred.isReg())
            fn(op.pred.reg);
    };

    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[static_cast<size_t>(i)];

        reads(op, [&](Vreg r) {
            RegState &st = regs[r];
            for (int w : st.writers) {
                addEdge(w, i, opLatency_[static_cast<size_t>(w)], 0,
                        DepKind::True);
            }
            st.readers.push_back(i);
            st.all_readers.push_back(i);
        });

        if (op.info().hasDst) {
            RegState &st = regs[op.dst];
            for (int rd : st.readers) {
                if (rd != i)
                    addEdge(rd, i, 0, 0, DepKind::Anti);
            }
            for (int w : st.writers) {
                int lat = complementaryPreds(
                              ops[static_cast<size_t>(w)], op)
                              ? 0
                              : 1;
                addEdge(w, i, lat, 0, DepKind::Output);
            }
            if (op.isPredicated()) {
                st.writers.push_back(i);
            } else {
                st.writers = {i};
                st.readers.clear();
            }
        }
    }

    // Memory ordering per (buffer, aliasToken), chains discovered in
    // program order.
    std::vector<MemChain> chains;
    std::unordered_map<uint64_t, size_t> chain_of;
    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[static_cast<size_t>(i)];
        if (!op.info().isMemory)
            continue;
        uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(op.buffer))
             << 32) |
            static_cast<uint32_t>(op.aliasToken);
        auto [it, fresh] = chain_of.try_emplace(key, chains.size());
        if (fresh) {
            chains.emplace_back();
            chains.back().buffer = op.buffer;
            chains.back().aliasToken = op.aliasToken;
        }
        MemChain &chain = chains[it->second];
        chain.allOps.push_back(i);

        // Chained edges: store -> store (lat 1), store -> later loads
        // (lat 1), loads-since-store -> store (lat 0). Transitivity
        // through the chain dominates the dropped all-pairs edges, so
        // heights and scheduler timing are unchanged. Only safe for
        // acyclic scheduling: the modulo scheduler's backtracking
        // bounds estart by *placed* predecessors only, where indirect
        // edges are not interchangeable with direct ones.
        if (loop_carried)
            continue;
        if (op.op == Opcode::Store) {
            for (int rd : chain.readersSinceStore)
                addEdge(rd, i, 0, 0, DepKind::Memory);
            if (chain.lastStore >= 0)
                addEdge(chain.lastStore, i, 1, 0, DepKind::Memory);
            chain.lastStore = i;
            chain.readersSinceStore.clear();
        } else {
            if (chain.lastStore >= 0)
                addEdge(chain.lastStore, i, 1, 0, DepKind::Memory);
            chain.readersSinceStore.push_back(i);
        }
    }

    if (loop_carried) {
        // The modulo scheduler needs every direct ordering edge;
        // iterate classes in (buffer, aliasToken) order so the edge
        // list is reproducible independently of discovery order.
        std::vector<size_t> class_order(chains.size());
        for (size_t c = 0; c < chains.size(); ++c)
            class_order[c] = c;
        std::sort(class_order.begin(), class_order.end(),
                  [&chains](size_t a, size_t b) {
                      if (chains[a].buffer != chains[b].buffer)
                          return chains[a].buffer < chains[b].buffer;
                      return chains[a].aliasToken <
                             chains[b].aliasToken;
                  });
        for (size_t c : class_order) {
            const std::vector<int> &idxs = chains[c].allOps;
            for (size_t a = 0; a < idxs.size(); ++a) {
                for (size_t b = a + 1; b < idxs.size(); ++b) {
                    const Operation &oa =
                        ops[static_cast<size_t>(idxs[a])];
                    const Operation &ob =
                        ops[static_cast<size_t>(idxs[b])];
                    bool a_store = oa.op == Opcode::Store;
                    bool b_store = ob.op == Opcode::Store;
                    if (!a_store && !b_store)
                        continue; // load-load: no ordering needed.
                    int lat = a_store && !b_store ? 1 : (a_store ? 1 : 0);
                    addEdge(idxs[a], idxs[b], lat, 0, DepKind::Memory);
                }
            }
        }

        // Register values live around the back edge: a reader at or
        // before a writer consumes the previous iteration's value.
        for (Vreg r = 0; r < regs.size(); ++r) {
            const RegState &st = regs[static_cast<size_t>(r)];
            if (st.writers.empty() || st.all_readers.empty())
                continue;
            for (int w : st.writers) {
                for (int rd : st.all_readers) {
                    if (rd <= w) {
                        addEdge(w, rd,
                                opLatency_[static_cast<size_t>(w)], 1,
                                DepKind::True);
                    }
                }
            }
        }
        // Conservative carried memory dependences, unless both ends
        // are declared streaming.
        for (size_t c : class_order) {
            const std::vector<int> &idxs = chains[c].allOps;
            for (int a : idxs) {
                for (int b : idxs) {
                    const Operation &oa =
                        ops[static_cast<size_t>(a)];
                    const Operation &ob =
                        ops[static_cast<size_t>(b)];
                    bool a_store = oa.op == Opcode::Store;
                    bool b_store = ob.op == Opcode::Store;
                    if (!a_store && !b_store)
                        continue;
                    if (oa.noCarriedAlias && ob.noCarriedAlias)
                        continue;
                    addEdge(a, b, a_store ? 1 : 0, 1, DepKind::Memory);
                }
            }
        }
    }

    buildCsr();
    computeHeights();
}

void
DependenceGraph::addEdge(int from, int to, int latency, int distance,
                         DepKind kind)
{
    vvsp_assert(distance > 0 || from < to || (from == to && distance > 0),
                "distance-0 edge must run forward (%d -> %d)", from, to);
    // Each (from, to, distance, kind) identity keeps one edge at the
    // running-max latency; every producer of a given identity supplies
    // the same latency, so this reproduces the drop-duplicates scan.
    auto [it, fresh] = edge_index_.try_emplace(
        edgeKey(from, to, distance, kind),
        static_cast<int>(edges_.size()));
    if (!fresh) {
        DepEdge &existing = edges_[static_cast<size_t>(it->second)];
        existing.latency = std::max(existing.latency, latency);
        return;
    }
    edges_.push_back(DepEdge{from, to, latency, distance, kind});
}

void
DependenceGraph::buildCsr()
{
    const size_t n = num_ops_;
    const size_t num_edges = edges_.size();
    succOff_.assign(n + 1, 0);
    predOff_.assign(n + 1, 0);
    for (const DepEdge &e : edges_) {
        succOff_[static_cast<size_t>(e.from) + 1]++;
        predOff_[static_cast<size_t>(e.to) + 1]++;
    }
    for (size_t i = 0; i < n; ++i) {
        succOff_[i + 1] += succOff_[i];
        predOff_[i + 1] += predOff_[i];
    }
    succCsr_.resize(num_edges);
    predCsr_.resize(num_edges);
    // Fill cursors start at each row's offset; iterating edges in
    // index order reproduces the per-op push_back order of the old
    // vector-of-vectors adjacency exactly.
    std::vector<int32_t> succ_cur(succOff_.begin(),
                                  succOff_.end() - 1);
    std::vector<int32_t> pred_cur(predOff_.begin(),
                                  predOff_.end() - 1);
    for (size_t e = 0; e < num_edges; ++e) {
        const DepEdge &edge = edges_[e];
        succCsr_[static_cast<size_t>(
            succ_cur[static_cast<size_t>(edge.from)]++)] =
            static_cast<int32_t>(e);
        predCsr_[static_cast<size_t>(
            pred_cur[static_cast<size_t>(edge.to)]++)] =
            static_cast<int32_t>(e);
    }
}

EdgeIndexRange
DependenceGraph::predEdges(int op) const
{
    const int32_t *base = predCsr_.data();
    return {base + predOff_[static_cast<size_t>(op)],
            base + predOff_[static_cast<size_t>(op) + 1]};
}

EdgeIndexRange
DependenceGraph::succEdges(int op) const
{
    const int32_t *base = succCsr_.data();
    return {base + succOff_[static_cast<size_t>(op)],
            base + succOff_[static_cast<size_t>(op) + 1]};
}

void
DependenceGraph::computeHeights()
{
    // Distance-0 edges always run forward in index order, so reverse
    // index order is a reverse topological order.
    heights_.assign(num_ops_, 1);
    for (int i = static_cast<int>(num_ops_) - 1; i >= 0; --i) {
        for (int e : succEdges(i)) {
            const DepEdge &edge = edges_[static_cast<size_t>(e)];
            if (edge.distance != 0)
                continue;
            heights_[static_cast<size_t>(i)] = std::max(
                heights_[static_cast<size_t>(i)],
                edge.latency + heights_[static_cast<size_t>(edge.to)]);
        }
    }
}

int
DependenceGraph::height(int op) const
{
    return heights_[static_cast<size_t>(op)];
}

int
DependenceGraph::criticalPathLength() const
{
    int best = 0;
    for (int h : heights_)
        best = std::max(best, h);
    return best;
}

bool
DependenceGraph::relaxationFeasible(int ii) const
{
    // No cycle has positive (latency - II*dist) weight; checked with
    // Bellman-Ford on longest paths over the reused scratch vector.
    bfDist_.assign(num_ops_, 0);
    bool changed = true;
    bool positive_cycle = false;
    for (size_t iter = 0; iter <= num_ops_ && changed; ++iter) {
        changed = false;
        for (const auto &e : edges_) {
            int w = e.latency - ii * e.distance;
            int cand = bfDist_[static_cast<size_t>(e.from)] + w;
            if (cand > bfDist_[static_cast<size_t>(e.to)]) {
                bfDist_[static_cast<size_t>(e.to)] = cand;
                changed = true;
                if (iter == num_ops_)
                    positive_cycle = true;
            }
        }
    }
    return !positive_cycle && !changed;
}

int
DependenceGraph::recurrenceMii() const
{
    if (num_ops_ == 0)
        return 1;
    // A cycle in a valid graph needs at least one carried edge; with
    // none, II = 1 is trivially feasible.
    bool any_carried = false;
    int max_lat_sum = 1;
    for (const auto &e : edges_) {
        max_lat_sum += e.latency;
        any_carried |= e.distance > 0;
    }
    if (!any_carried)
        return 1;

    // Every cycle carries distance >= 1, so its weight
    // latSum - II*distSum strictly decreases with II: feasibility is
    // monotone and the smallest feasible II can be binary searched.
    if (relaxationFeasible(1))
        return 1;
    // Invariant: lo infeasible; hi = the answer if any II in range
    // is feasible, else max_lat_sum (the historical fallback).
    int lo = 1, hi = max_lat_sum;
    while (hi - lo > 1) {
        int mid = lo + (hi - lo) / 2;
        if (relaxationFeasible(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

std::string
DependenceGraph::str() const
{
    std::ostringstream os;
    static const char *names[] = {"true", "anti", "out", "mem"};
    for (const auto &e : edges_) {
        os << e.from << " -> " << e.to << " ["
           << names[static_cast<size_t>(e.kind)] << " lat=" << e.latency
           << " dist=" << e.distance << "]\n";
    }
    return os.str();
}

} // namespace vvsp
