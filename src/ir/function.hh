/**
 * @file
 * A kernel function: a structured region tree plus its local-memory
 * buffers.
 *
 * Buffers name disjoint arrays in the cluster's local data RAM
 * (reference window, current macroblock, coefficient tables, output
 * area, ...). Kernels address buffers with word offsets; bank and
 * base-address assignment happens when the code is mapped onto a
 * concrete datapath model.
 */

#ifndef VVSP_IR_FUNCTION_HH
#define VVSP_IR_FUNCTION_HH

#include <string>
#include <vector>

#include "ir/region.hh"

namespace vvsp
{

/** A named array in cluster-local data RAM. */
struct MemBuffer
{
    int id = -1;
    std::string name;
    /** Capacity in 16-bit words (the memory is word addressed). */
    int sizeWords = 0;
    /** Cluster that owns the buffer (multi-cluster schedules). */
    int cluster = 0;
    /** Memory bank within the cluster. */
    int bank = 0;
    /**
     * Declared value range (signed 16-bit interpretation). Kernel
     * authors declare tight ranges for pixel and coefficient data -
     * "information that can be derived from the code specification"
     * (Sec. 3.3) - which lets the multiply decomposition use the
     * cheap 16x8 form when a factor provably fits 8 bits.
     */
    int minValue = -32768;
    int maxValue = 32767;
};

/** A complete kernel. */
class Function
{
  public:
    std::string name;
    NodeList body;
    std::vector<MemBuffer> buffers;

    /** Allocate a fresh virtual register. */
    Vreg newVreg() { return nextVreg_++; }

    /** Allocate a fresh node id. */
    int newNodeId() { return nextNodeId_++; }

    /** Allocate a fresh operation id. */
    int newOpId() { return nextOpId_++; }

    Vreg numVregs() const { return nextVreg_; }
    int numNodeIds() const { return nextNodeId_; }
    int numOpIds() const { return nextOpId_; }

    /** Look up a buffer by id (panics on a bad id). */
    const MemBuffer &buffer(int id) const;
    MemBuffer &buffer(int id);

    /** Total words of local memory used by all buffers in a bank. */
    int bufferWords(int cluster, int bank) const;

    /** Deep copy. */
    Function clone() const;

    /** Multi-line printable form. */
    std::string str() const;

    /**
     * Renumber all operation ids densely in pre-order; call after a
     * transformation that inserted or cloned operations.
     */
    void renumberOps();

    /**
     * Renumber node ids and operation ids densely in pre-order; call
     * after a transformation that cloned nodes (profiles index by
     * node id, which must stay unique).
     */
    void renumberAll();

  private:
    Vreg nextVreg_ = 0;
    int nextNodeId_ = 0;
    int nextOpId_ = 0;
};

} // namespace vvsp

#endif // VVSP_IR_FUNCTION_HH
