/**
 * @file
 * Operation set of the VLIW VSP (16-bit integer datapath).
 *
 * The machine's only native data type is the 16-bit integer
 * (Sec. 2). Values are two's-complement; arithmetic wraps modulo
 * 2^16. Every source operand of an ALU operation may be a register or
 * an immediate (the long instruction word has room for literals).
 *
 * Functional-unit classes follow the cluster organization: each issue
 * slot feeds one ALU plus at most one alternate unit (multiplier,
 * shifter, or load/store unit); branches issue on the machine-wide
 * control slot (operation 33 of the long instruction).
 */

#ifndef VVSP_IR_OPCODE_HH
#define VVSP_IR_OPCODE_HH

#include <cstdint>
#include <string>

namespace vvsp
{

/** All operations understood by the schedulers and simulators. */
enum class Opcode : uint8_t
{
    Nop,

    // ALU class.
    Mov,     ///< dst = src0.
    Add,     ///< dst = src0 + src1.
    Sub,     ///< dst = src0 - src1.
    Abs,     ///< dst = |src0|.
    AbsDiff, ///< dst = |src0 - src1| (special motion-search op).
    Min,     ///< dst = min(src0, src1) signed.
    Max,     ///< dst = max(src0, src1) signed.
    And,     ///< dst = src0 & src1.
    Or,      ///< dst = src0 | src1.
    Xor,     ///< dst = src0 ^ src1.
    Not,     ///< dst = ~src0.
    Neg,     ///< dst = -src0.
    CmpEq,   ///< dst = src0 == src1.
    CmpNe,   ///< dst = src0 != src1.
    CmpLt,   ///< dst = src0 < src1 (signed).
    CmpLe,   ///< dst = src0 <= src1 (signed).
    CmpGt,   ///< dst = src0 > src1 (signed).
    CmpGe,   ///< dst = src0 >= src1 (signed).
    CmpLtU,  ///< dst = src0 < src1 (unsigned).
    Select,  ///< dst = src0 ? src1 : src2.

    // Shifter class.
    Shl, ///< dst = src0 << (src1 & 15).
    Shr, ///< dst = src0 >> (src1 & 15), logical.
    Sra, ///< dst = src0 >> (src1 & 15), arithmetic.

    // Multiplier class.
    Mul8,    ///< dst = sext8(src0) * sext8(src1), signed 8x8.
    MulU8,   ///< dst = zext8(src0) * sext8(src1).
    MulUU8,  ///< dst = zext8(src0) * zext8(src1).
    Mul16Lo, ///< dst = (src0 * src1) & 0xffff (M16 models only).
    Mul16Hi, ///< dst = (src0 * src1) >> 16 (M16 models only).

    // Load/store class. Effective word address within the buffer is
    // src-dependent: Load: src0 (+ src1); Store: src1 (+ src2).
    Load,  ///< dst = buffer[addr].
    Store, ///< buffer[addr] = src0.

    // Crossbar transport.
    Xfer, ///< dst (in destination cluster) = src0 (source cluster).

    // Control (machine-wide slot).
    Br,     ///< unconditional branch (loop close / exit).
    BrCond, ///< branch if src0 (sense in the operation).
};

/** Functional-unit class an opcode executes on. */
enum class FuClass : uint8_t
{
    None,   ///< Nop.
    Alu,    ///< ALU operations.
    Shift,  ///< barrel shifter.
    Mult,   ///< multiplier.
    Mem,    ///< load/store unit.
    Xbar,   ///< crossbar port.
    Branch, ///< machine-wide control slot.
};

/** Static properties of an opcode. */
struct OpcodeInfo
{
    const char *name;
    FuClass fuClass;
    int numSrcs;      ///< architected source operands.
    bool hasDst;
    bool isCompare;   ///< produces a 0/1 predicate value.
    bool isMemory;
    bool isBranch;
};

/** Property table lookup. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Printable mnemonic. */
std::string opcodeName(Opcode op);

} // namespace vvsp

#endif // VVSP_IR_OPCODE_HH
