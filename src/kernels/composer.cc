#include "kernels/composer.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "obs/stats_registry.hh"
#include "sched/list_scheduler.hh"
#include "sched/modulo_scheduler.hh"
#include "support/logging.hh"

namespace vvsp
{

AvgProfile::AvgProfile(int num_node_ids)
    : blockExec(static_cast<size_t>(num_node_ids), 0.0),
      loopEntries(static_cast<size_t>(num_node_ids), 0.0),
      loopIters(static_cast<size_t>(num_node_ids), 0.0),
      ifThen(static_cast<size_t>(num_node_ids), 0.0),
      ifElse(static_cast<size_t>(num_node_ids), 0.0)
{
}

void
AvgProfile::accumulate(const Profile &p)
{
    if (blockExec.size() < p.blockExec.size()) {
        blockExec.resize(p.blockExec.size(), 0.0);
        loopEntries.resize(p.blockExec.size(), 0.0);
        loopIters.resize(p.blockExec.size(), 0.0);
        ifThen.resize(p.blockExec.size(), 0.0);
        ifElse.resize(p.blockExec.size(), 0.0);
    }
    for (size_t i = 0; i < p.blockExec.size(); ++i) {
        blockExec[i] += static_cast<double>(p.blockExec[i]);
        loopEntries[i] += static_cast<double>(p.loopEntries[i]);
        loopIters[i] += static_cast<double>(p.loopIters[i]);
        ifThen[i] += static_cast<double>(p.ifThen[i]);
        ifElse[i] += static_cast<double>(p.ifElse[i]);
    }
}

void
AvgProfile::scale(double f)
{
    for (auto *v : {&blockExec, &loopEntries, &loopIters, &ifThen,
                    &ifElse}) {
        for (auto &x : *v)
            x *= f;
    }
}

std::string
CompositionResult::str() const
{
    std::ostringstream os;
    os << "cycles/unit=" << cyclesPerUnit
       << " instrs=" << totalInstructions
       << " hotLoopInstrs=" << hotLoopInstructions
       << " maxLive=" << maxLive << (icacheOk ? "" : " ICACHE-OVERFLOW")
       << (registersOk ? "" : " REGISTER-OVERFLOW");
    return os.str();
}

namespace
{

double
at(const std::vector<double> &v, int id)
{
    vvsp_assert(id >= 0 && id < static_cast<int>(v.size()),
                "profile missing node %d", id);
    return v[static_cast<size_t>(id)];
}

} // anonymous namespace

std::vector<Operation>
loopControlOps(Function &fn, const LoopNode &loop)
{
    std::vector<Operation> ops;
    if (loop.tripCount < 0) {
        Operation br;
        br.op = Opcode::Br;
        br.id = fn.newOpId();
        ops.push_back(br);
        return ops;
    }
    vvsp_assert(loop.inductionVar != kNoVreg,
                "counted loop '%s' without an induction variable",
                loop.label.c_str());
    Operand bound;
    if (loop.ivInit.isImm()) {
        long b = loop.ivInit.imm + loop.tripCount * loop.step;
        vvsp_assert(b < 65536,
                    "loop '%s' bound %ld overflows 16-bit compare",
                    loop.label.c_str(), b);
        bound = Operand::ofImm(static_cast<int32_t>(b));
    } else {
        vvsp_assert(loop.boundVreg != kNoVreg,
                    "pointer loop '%s' needs a precomputed bound",
                    loop.label.c_str());
        bound = Operand::ofReg(loop.boundVreg);
    }
    Operation add;
    add.op = Opcode::Add;
    add.dst = loop.inductionVar;
    add.src = {Operand::ofReg(loop.inductionVar),
               Operand::ofImm(loop.step), Operand::none()};
    add.id = fn.newOpId();
    Operation cmp;
    cmp.op = Opcode::CmpNe;
    cmp.dst = fn.newVreg();
    cmp.src = {Operand::ofReg(loop.inductionVar), bound,
               Operand::none()};
    cmp.id = fn.newOpId();
    Operation br;
    br.op = Opcode::BrCond;
    br.src[0] = Operand::ofReg(cmp.dst);
    br.id = fn.newOpId();
    ops.push_back(add);
    ops.push_back(cmp);
    ops.push_back(br);
    return ops;
}

/**
 * Candidate-II budget per software-pipelined loop, from
 * VVSP_SCHED_BUDGET. Unset or non-positive means unlimited — the
 * default, so normal runs never degrade and goldens are untouched.
 */
long
schedBudget()
{
    static const long v = [] {
        const char *env = std::getenv("VVSP_SCHED_BUDGET");
        if (!env || !*env)
            return -1L;
        long n = std::atol(env);
        return n > 0 ? n : -1L;
    }();
    return v;
}

bool
swpEligibleLoop(const LoopNode &loop, ScheduleMode mode)
{
    if (mode != ScheduleMode::Swp)
        return false;
    if (loop.tripCount < 1 || loop.body.empty())
        return false;
    for (const auto &n : loop.body) {
        if (n->kind() != NodeKind::Block)
            return false;
    }
    return true;
}

struct Composer::Walker
{
    Function &fn;
    const MachineModel &machine;
    ScheduleMode mode;
    const AvgProfile &prof;
    ListScheduler lsched;
    ModuloScheduler msched;
    BankOfFn bankOf;
    obs::StatsScope phase = obs::globalScope("phase");
    obs::StatsScope isaStats = obs::globalScope("isa");
    CompositionResult result;

    /** Encoded-schedule source/sink (see Composer::compose). */
    const IsaModule *rehydrate = nullptr;
    IsaModule *emit = nullptr;
    IsaFormat fmt;
    size_t sectionIdx = 0;

    std::vector<Operation> pending;
    double pendingCount = 0;
    std::string pendingLabel;

    Walker(Function &f, const MachineModel &m, ScheduleMode md,
           const AvgProfile &p, BankOfFn bank_of)
        : fn(f), machine(m), mode(md), prof(p),
          lsched(m, bank_of), msched(m, bank_of),
          bankOf(std::move(bank_of)),
          fmt(isaFormatFor(m.config()))
    {
    }

    /**
     * Schedule header + measured code size of the current group.
     * The schedule carries placements only on the cold path; a
     * rehydrated group reconstructs the header fields (length, ii,
     * stages, maxLive, instructions) from the cached section and
     * never runs the scheduler.
     */
    struct SectionOutcome
    {
        BlockSchedule sched;
        SectionStats stats;
    };

    SectionOutcome
    encodeOrRehydrate(const std::string &label,
                      const std::vector<Operation> &ops, bool width1,
                      const char *phase_name,
                      const std::function<BlockSchedule()> &schedule)
    {
        SectionOutcome out;
        const IsaSection *cached = nullptr;
        if (rehydrate && sectionIdx < rehydrate->sections.size()) {
            const IsaSection &c = rehydrate->sections[sectionIdx];
            if (c.ops.size() == ops.size() &&
                c.opsHash == isaOpsHash(ops))
                cached = &c;
        }
        ++sectionIdx;
        if (cached) {
            out.sched.length = cached->length;
            out.sched.ii = cached->ii;
            out.sched.stages = cached->stages;
            out.sched.maxLive = cached->maxLive;
            out.sched.instructions = cached->words();
            out.stats = sectionStats(*cached, fmt);
            isaStats.bump("sections_rehydrated");
            if (emit)
                emit->sections.push_back(*cached);
        } else {
            out.sched = obs::timedPhase(phase, phase_name, schedule);
            IsaSection sec = buildSection(label, ops, out.sched,
                                          width1, machine, bankOf);
            out.stats = sectionStats(sec, fmt);
            if (emit)
                emit->sections.push_back(std::move(sec));
        }
        isaStats.bump("sections");
        isaStats.bump("words",
                      static_cast<uint64_t>(out.stats.words));
        isaStats.bump("bytes",
                      static_cast<uint64_t>(out.stats.bytes));
        isaStats.bump("nop_slots",
                      static_cast<uint64_t>(out.stats.nopSlots));
        return out;
    }

    void
    flush()
    {
        if (pending.empty())
            return;
        bool width1 = mode == ScheduleMode::Sequential;
        SectionOutcome enc = encodeOrRehydrate(
            pendingLabel, pending, width1, "list_sched",
            [&] { return lsched.schedule(pending, width1); });
        RegionCost rc;
        rc.label = pendingLabel;
        rc.execCount = pendingCount;
        rc.length = enc.sched.length;
        rc.cycles = enc.sched.length * pendingCount;
        rc.instructions = static_cast<int>(enc.stats.words);
        rc.maxLive = enc.sched.maxLive;
        rc.codeBytes = enc.stats.bytes;
        rc.nopSlots = enc.stats.nopSlots;
        record(rc, pending.size());
        pending.clear();
        pendingCount = 0;
        pendingLabel.clear();
    }

    void
    record(const RegionCost &rc, size_t num_ops)
    {
        if (rc.degraded)
            result.degradedRegions++;
        result.cyclesPerUnit += rc.cycles;
        result.totalInstructions += rc.instructions;
        result.maxLive = std::max(result.maxLive, rc.maxLive);
        result.opsPerUnit +=
            static_cast<double>(num_ops) * rc.execCount;
        result.codeWords += rc.instructions;
        result.codeBytes += rc.codeBytes;
        result.nopSlots += rc.nopSlots;
        result.regions.push_back(rc);
    }

    void
    appendOps(const std::vector<Operation> &ops, double count,
              const std::string &label)
    {
        if (!pending.empty() && pendingCount != count)
            flush();
        if (pending.empty()) {
            pendingCount = count;
            pendingLabel = label;
        }
        pending.insert(pending.end(), ops.begin(), ops.end());
    }

    void
    appendBranch(Operand cond, double count)
    {
        Operation br;
        br.op = cond.isNone() ? Opcode::Br : Opcode::BrCond;
        if (!cond.isNone())
            br.src[0] = cond;
        br.id = fn.newOpId();
        appendOps({br}, count, "branch");
        flush(); // a branch always terminates its group.
    }

    void
    handleLoop(const LoopNode &loop)
    {
        flush();
        int mark = result.totalInstructions;
        double entries = at(prof.loopEntries, loop.id);
        double iters = at(prof.loopIters, loop.id);

        if (swpEligibleLoop(loop, mode)) {
            std::vector<Operation> ops;
            for (const auto &n : loop.body) {
                const auto &block = static_cast<const BlockNode &>(*n);
                ops.insert(ops.end(), block.ops.begin(),
                           block.ops.end());
            }
            auto ctrl = loopControlOps(fn, loop);
            ops.insert(ops.end(), ctrl.begin(), ctrl.end());
            SectionOutcome enc = encodeOrRehydrate(
                "swp:" + loop.label, ops, false, "modulo_sched",
                [&] {
                    auto swp_sched = msched.scheduleBudgeted(
                        ops, machine.registersPerCluster(),
                        schedBudget());
                    if (swp_sched)
                        return std::move(*swp_sched);
                    // Budget exhausted with no feasible II at all:
                    // fall back to the acyclic list schedule of the
                    // loop body. Slower cycles, but correct ones —
                    // the cell is marked degraded, never silently
                    // wrong.
                    BlockSchedule fallback =
                        lsched.schedule(ops, false);
                    fallback.degraded = true;
                    return fallback;
                });
            const BlockSchedule &sched = enc.sched;
            obs::StatsScope swp = obs::globalScope("sched/swp");
            if (swp.enabled() && sched.isModulo()) {
                // Achieved II against both lower bounds, so reports
                // can tell resource-bound loops from recurrence-bound
                // ones and spot schedules that missed the MII.
                int res_mii = msched.resourceMii(ops);
                DependenceGraph ddg(ops, machine.latencyFn(), true);
                int rec_mii = ddg.recurrenceMii();
                int mii = std::max(res_mii, rec_mii);
                swp.bump("loops");
                swp.sample("ii", sched.ii);
                swp.sample("res_mii", res_mii);
                swp.sample("rec_mii", rec_mii);
                swp.sample("ii_slack", sched.ii - mii);
                if (sched.ii == mii)
                    swp.bump("ii_optimal");
            }
            RegionCost rc;
            rc.label = "swp:" + loop.label;
            rc.execCount = iters;
            rc.ii = sched.ii;
            rc.length = sched.length;
            rc.degraded = sched.degraded;
            // A degraded fallback may be acyclic (ii == 0): cost it
            // as a plain loop body, length cycles per iteration.
            rc.cycles = sched.isModulo()
                            ? entries * (sched.prologueCycles() +
                                         sched.epilogueCycles()) +
                                  iters * sched.ii
                            : iters * sched.length;
            rc.instructions = static_cast<int>(enc.stats.words);
            rc.maxLive = sched.maxLive;
            rc.codeBytes = enc.stats.bytes;
            rc.nopSlots = enc.stats.nopSlots;
            record(rc, ops.size());
        } else {
            walkList(loop.body);
            auto ctrl = loopControlOps(fn, loop);
            if (!pending.empty() && pendingCount != iters)
                flush();
            appendOps(ctrl, iters, "loop:" + loop.label);
            flush();
        }

        int loop_instrs = result.totalInstructions - mark;
        result.hotLoopInstructions =
            std::max(result.hotLoopInstructions, loop_instrs);
        if (loop_instrs > machine.icacheCapacity() && iters > 0)
            result.icacheOk = false;
    }

    void
    walkList(const NodeList &list)
    {
        for (const auto &n : list) {
            switch (n->kind()) {
              case NodeKind::Block: {
                const auto &block = static_cast<const BlockNode &>(*n);
                appendOps(block.ops, at(prof.blockExec, block.id),
                          block.label);
                break;
              }
              case NodeKind::Loop:
                handleLoop(static_cast<const LoopNode &>(*n));
                break;
              case NodeKind::If: {
                const auto &iff = static_cast<const IfNode &>(*n);
                double evals = at(prof.ifThen, iff.id) +
                               at(prof.ifElse, iff.id);
                // Conditional branch closing the preceding group.
                if (pending.empty())
                    pendingCount = evals;
                appendBranch(iff.cond, pending.empty()
                                           ? evals
                                           : pendingCount);
                walkList(iff.thenBody);
                if (!iff.elseBody.empty()) {
                    // Skip over the else arm.
                    appendBranch(Operand::none(),
                                 at(prof.ifThen, iff.id));
                    walkList(iff.elseBody);
                }
                flush();
                break;
              }
              case NodeKind::Break: {
                const auto &brk = static_cast<const BreakNode &>(*n);
                appendBranch(brk.cond, pendingCount);
                break;
              }
            }
        }
    }
};

Composer::Composer(const MachineModel &machine, ScheduleMode mode)
    : machine_(machine), mode_(mode)
{
}

CompositionResult
Composer::compose(Function &fn, const AvgProfile &profile,
                  const IsaModule *rehydrate, IsaModule *emit)
{
    BankOfFn bank_of = [&fn](int buffer) {
        return fn.buffer(buffer).bank;
    };
    Walker walker(fn, machine_, mode_, profile, bank_of);
    walker.rehydrate = rehydrate;
    walker.emit = emit;
    if (emit) {
        emit->machine = machine_.name();
        emit->name = fn.name;
        emit->fmt = walker.fmt;
        emit->sections.clear();
    }
    walker.walkList(fn.body);
    walker.flush();
    walker.result.registersOk =
        walker.result.maxLive <= machine_.registersPerCluster();
    if (walker.result.hotLoopInstructions > machine_.icacheCapacity())
        walker.result.icacheOk = false;
    return walker.result;
}

} // namespace vvsp
