/**
 * @file
 * RGB -> YCrCb conversion with 4:4:4 -> 4:2:0 subsampling
 * (paper Sec. 3.4.4).
 *
 * One unit = one 16x16 macroblock of RGB samples. Fixed-point
 * formulas with 7 fractional bits (all products fit 16 bits):
 *
 *   Y  = ( 33 R + 64 G + 12 B) >> 7
 *   Cb = ((-19 R - 37 G + 56 B) >> 7) + 128
 *   Cr = (( 56 R - 47 G -  9 B) >> 7) + 128
 *
 * Chroma is computed from the average RGB of each 2x2 quad. The
 * baseline walks pixels with parity branches ("several paths through
 * the inner loop"); the restructured variants process one 2x2 quad
 * per iteration, which is how unrolling "eliminates branches that
 * depend only on loop index values".
 */

#include "kernels/kernel.hh"

#include "ir/builder.hh"

#include <map>
#include <mutex>

#include "support/logging.hh"
#include "video/synthetic.hh"
#include "xform/passes.hh"

namespace vvsp
{

namespace
{

Operand
R(Vreg v)
{
    return Operand::ofReg(v);
}

Operand
K(int32_t v)
{
    return Operand::ofImm(v);
}

int
w16(int v)
{
    return static_cast<int16_t>(static_cast<uint16_t>(v));
}

struct CscCoefs
{
    int yr = 33, yg = 64, yb = 12;
    int cbr = -19, cbg = -37, cbb = 56;
    int crr = 56, crg = -47, crb = -9;
};

/** Emit (a*ca + b*cb + c*cc) >> 7 [+ bias]. */
Vreg
emitWeighted(IRBuilder &bld, Operand a, Operand b, Operand c, int ca,
             int cb, int cc, int bias)
{
    Vreg t1 = bld.mul16(a, K(ca));
    Vreg t2 = bld.mul16(b, K(cb));
    Vreg t3 = bld.mul16(c, K(cc));
    Vreg s1 = bld.add(R(t1), R(t2));
    Vreg s2 = bld.add(R(s1), R(t3));
    Vreg sh = bld.sra(R(s2), K(7));
    if (bias == 0)
        return sh;
    return bld.add(R(sh), K(bias));
}

/** Baseline: per-pixel loop with parity branches. */
Function
buildCscScalar()
{
    CscCoefs cf;
    IRBuilder b("csc.scalar");
    int rb = b.buffer("r", 256);
    int gb = b.buffer("g", 256);
    int bb = b.buffer("bch", 256);
    int yo = b.buffer("yout", 256);
    int cbo = b.buffer("cbout", 64);
    int cro = b.buffer("crout", 64);

    auto &py = b.beginLoop(16, "py");
    {
        Vreg yb = b.shl(R(py.inductionVar), K(4));
        auto &px = b.beginLoop(16, "px");
        {
            Vreg idx = b.add(R(yb), R(px.inductionVar));
            Vreg rv = b.load(rb, R(yb), R(px.inductionVar), 0, true);
            Vreg gv = b.load(gb, R(yb), R(px.inductionVar), 0, true);
            Vreg bv = b.load(bb, R(yb), R(px.inductionVar), 0, true);
            Vreg yv = emitWeighted(b, R(rv), R(gv), R(bv), cf.yr,
                                   cf.yg, cf.yb, 0);
            b.store(yo, R(yv), R(yb), R(px.inductionVar), 1, true);

            Vreg xp = b.band(R(px.inductionVar), K(1));
            Vreg yp = b.band(R(py.inductionVar), K(1));
            Vreg quad = b.band(R(xp), R(yp));
            b.beginIf(R(quad));
            {
                // Average the completed 2x2 quad (offsets 0, -1,
                // -16, -17 from the current odd/odd pixel).
                auto avg = [&](int buf) {
                    Vreg v0 = b.load(buf, R(idx), Operand::none(), 0,
                                     true);
                    Vreg v1 = b.load(buf, R(idx), K(-1), 0, true);
                    Vreg v2 = b.load(buf, R(idx), K(-16), 0, true);
                    Vreg v3 = b.load(buf, R(idx), K(-17), 0, true);
                    Vreg s1 = b.add(R(v0), R(v1));
                    Vreg s2 = b.add(R(v2), R(v3));
                    Vreg s = b.add(R(s1), R(s2));
                    return b.sra(R(s), K(2));
                };
                Vreg ra = avg(rb);
                Vreg ga = avg(gb);
                Vreg ba = avg(bb);
                Vreg cbv = emitWeighted(b, R(ra), R(ga), R(ba),
                                        cf.cbr, cf.cbg, cf.cbb, 128);
                Vreg crv = emitWeighted(b, R(ra), R(ga), R(ba),
                                        cf.crr, cf.crg, cf.crb, 128);
                Vreg cy = b.sra(R(py.inductionVar), K(1));
                Vreg cx = b.sra(R(px.inductionVar), K(1));
                Vreg cb8 = b.shl(R(cy), K(3));
                Vreg cidx = b.add(R(cb8), R(cx));
                b.store(cbo, R(cbv), R(cidx), Operand::none(), 2,
                        true);
                b.store(cro, R(crv), R(cidx), Operand::none(), 3,
                        true);
            }
            b.endIf();
        }
        b.endLoop();
    }
    b.endLoop();
    return b.finish();
}

/** Restructured: one 2x2 quad per iteration, no branches. */
Function
buildCscQuad()
{
    CscCoefs cf;
    IRBuilder b("csc.quad");
    int rb = b.buffer("r", 256);
    int gb = b.buffer("g", 256);
    int bb = b.buffer("bch", 256);
    int yo = b.buffer("yout", 256);
    int cbo = b.buffer("cbout", 64);
    int cro = b.buffer("crout", 64);

    auto &qy = b.beginLoop(8, "qy");
    {
        Vreg row0 = b.shl(R(qy.inductionVar), K(5)); // 2*qy*16.
        auto &qx = b.beginLoop(8, "qx");
        {
            Vreg x0 = b.shl(R(qx.inductionVar), K(1));
            Vreg i00 = b.add(R(row0), R(x0));

            Vreg rsum = kNoVreg, gsum = kNoVreg, bsum = kNoVreg;
            for (int off : {0, 1, 16, 17}) {
                Vreg rv = b.load(rb, R(i00), K(off), 0, true);
                Vreg gv = b.load(gb, R(i00), K(off), 0, true);
                Vreg bv = b.load(bb, R(i00), K(off), 0, true);
                Vreg yv = emitWeighted(b, R(rv), R(gv), R(bv), cf.yr,
                                       cf.yg, cf.yb, 0);
                b.store(yo, R(yv), R(i00), K(off), 1, true);
                rsum = rsum == kNoVreg ? rv : b.add(R(rsum), R(rv));
                gsum = gsum == kNoVreg ? gv : b.add(R(gsum), R(gv));
                bsum = bsum == kNoVreg ? bv : b.add(R(bsum), R(bv));
            }
            Vreg ra = b.sra(R(rsum), K(2));
            Vreg ga = b.sra(R(gsum), K(2));
            Vreg ba = b.sra(R(bsum), K(2));
            Vreg cbv = emitWeighted(b, R(ra), R(ga), R(ba), cf.cbr,
                                    cf.cbg, cf.cbb, 128);
            Vreg crv = emitWeighted(b, R(ra), R(ga), R(ba), cf.crr,
                                    cf.crg, cf.crb, 128);
            Vreg cb8 = b.shl(R(qy.inductionVar), K(3));
            Vreg cidx = b.add(R(cb8), R(qx.inductionVar));
            b.store(cbo, R(cbv), R(cidx), Operand::none(), 2, true);
            b.store(cro, R(crv), R(cidx), Operand::none(), 3, true);
        }
        b.endLoop();
    }
    b.endLoop();
    return b.finish();
}

/** Shared golden (quad averaging order matches both builders). */
void
goldenCsc(const Function &fn, MemoryImage &mem)
{
    CscCoefs cf;
    int rb = bufferIdByName(fn, "r");
    int gb = bufferIdByName(fn, "g");
    int bb = bufferIdByName(fn, "bch");
    int yo = bufferIdByName(fn, "yout");
    int cbo = bufferIdByName(fn, "cbout");
    int cro = bufferIdByName(fn, "crout");

    auto weighted = [](int a, int b2, int c, int ca, int cb, int cc,
                       int bias) {
        int t1 = w16(a * ca);
        int t2 = w16(b2 * cb);
        int t3 = w16(c * cc);
        int s = w16(w16(t1 + t2) + t3);
        return w16((s >> 7) + bias);
    };

    for (int i = 0; i < 256; ++i) {
        int rv = mem.read(rb, i), gv = mem.read(gb, i),
            bv = mem.read(bb, i);
        mem.write(yo, i,
                  static_cast<uint16_t>(weighted(
                      rv, gv, bv, cf.yr, cf.yg, cf.yb, 0)));
    }
    for (int qy = 0; qy < 8; ++qy) {
        for (int qx = 0; qx < 8; ++qx) {
            int i00 = qy * 32 + qx * 2;
            auto avg = [&](int buf) {
                int s = w16(w16(w16(mem.read(buf, i00)) +
                                w16(mem.read(buf, i00 + 1))) +
                            w16(w16(mem.read(buf, i00 + 16)) +
                                w16(mem.read(buf, i00 + 17))));
                return w16(s) >> 2;
            };
            int ra = avg(rb), ga = avg(gb), ba = avg(bb);
            mem.write(cbo, qy * 8 + qx,
                      static_cast<uint16_t>(
                          weighted(ra, ga, ba, cf.cbr, cf.cbg,
                                   cf.cbb, 128)));
            mem.write(cro, qy * 8 + qx,
                      static_cast<uint16_t>(
                          weighted(ra, ga, ba, cf.crr, cf.crg,
                                   cf.crb, 128)));
        }
    }
}

const RgbFrame &
rgbFor(const FrameGeometry &geom)
{
    // Shared across sweep workers; map nodes are stable, so the
    // reference stays valid after the lock is released.
    static std::map<std::pair<int, int>, RgbFrame> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(geom.width, geom.height);
    auto it = cache.find(key);
    if (it == cache.end()) {
        SyntheticVideo video(geom.width, geom.height, 23);
        it = cache.emplace(key, video.rgbFrame(0)).first;
    }
    return it->second;
}

void
prepareCscUnit(const Function &fn, MemoryImage &mem,
               const FrameGeometry &geom, int index)
{
    const RgbFrame &frame = rgbFor(geom);
    int mbx = index % geom.macroblocksX();
    int mby = (index / geom.macroblocksX()) % geom.macroblocksY();
    std::vector<uint16_t> r(256), g(256), bch(256);
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            size_t i = static_cast<size_t>(y * 16 + x);
            r[i] = frame.r.at(mbx * 16 + x, mby * 16 + y);
            g[i] = frame.g.at(mbx * 16 + x, mby * 16 + y);
            bch[i] = frame.b.at(mbx * 16 + x, mby * 16 + y);
        }
    }
    fillAllByName(fn, mem, "r", r);
    fillAllByName(fn, mem, "g", g);
    fillAllByName(fn, mem, "bch", bch);
}

} // anonymous namespace

KernelSpec
makeColorConvertKernel()
{
    KernelSpec k;
    k.name = "RGB:YCrCb converter/subsampler";
    k.unitsPerFrame = [](const FrameGeometry &g) {
        return static_cast<double>(g.macroblocks());
    };
    k.outputBuffers = {"yout", "cbout", "crout"};
    k.prepare = prepareCscUnit;
    k.golden = goldenCsc;

    k.variants.push_back({"Sequential", ScheduleMode::Sequential,
                          false, 1, false, false, buildCscScalar,
                          [](Function &fn) {
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"Sequential-unrolled",
                          ScheduleMode::Sequential, false, 1, false,
                          false, buildCscQuad,
                          [](Function &fn) {
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"List-scheduled", ScheduleMode::Wide, true,
                          1, false, false, buildCscQuad,
                          [](Function &fn) {
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"SW Pipelined & predicated",
                          ScheduleMode::Swp, true, 1, false, false,
                          buildCscQuad,
                          [](Function &fn) {
                              // Pipeline whole row-pair iterations.
                              passes::unrollLoopByLabel(fn, "qx", 0);
                              passes::ifConvert(fn);
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    return k;
}

} // namespace vvsp
