/**
 * @file
 * Frame-level cycle composition.
 *
 * Walks a kernel's structured IR, schedules every straight-line
 * group onto the datapath model (list scheduling at width 1 or full
 * width, or modulo scheduling of eligible innermost loops), and
 * multiplies each group's schedule length by its dynamic execution
 * count from the interpreter profile. This yields cycles per kernel
 * unit, exact for static control flow and profile-weighted for the
 * data-dependent VBR coder - the same accounting the paper's
 * hand-simulations performed.
 *
 * Loop control (induction update, bound compare, back-edge branch
 * with its delay slots) is materialized here, so sequential code
 * pays the "loop-closing branches and unfilled branch-delay slots"
 * the paper describes, and unrolled variants amortize them.
 */

#ifndef VVSP_KERNELS_COMPOSER_HH
#define VVSP_KERNELS_COMPOSER_HH

#include <string>
#include <vector>

#include "arch/machine_model.hh"
#include "isa/encoder.hh"
#include "kernels/kernel.hh"
#include "sim/interpreter.hh"

namespace vvsp
{

/** Execution-count profile averaged over kernel units. */
struct AvgProfile
{
    std::vector<double> blockExec;
    std::vector<double> loopEntries;
    std::vector<double> loopIters;
    std::vector<double> ifThen;
    std::vector<double> ifElse;

    AvgProfile() = default;
    explicit AvgProfile(int num_node_ids);

    void accumulate(const Profile &p);
    void scale(double f);
};

/** Cost of one scheduled code group. */
struct RegionCost
{
    std::string label;
    double execCount = 0;  ///< dynamic executions per unit.
    int length = 0;        ///< cycles per execution (acyclic).
    int ii = 0;            ///< initiation interval (modulo groups).
    double cycles = 0;     ///< total contribution per unit.
    int instructions = 0;  ///< static code size (encoded words).
    int maxLive = 0;
    int64_t codeBytes = 0; ///< encoded payload bytes.
    int64_t nopSlots = 0;  ///< empty issue slots across the words.
    /** Scheduling budget ran out for this group (see
     *  BlockSchedule::degraded); cycles reflect the fallback
     *  schedule actually used, never a guess. */
    bool degraded = false;
};

/** Composition output. */
struct CompositionResult
{
    double cyclesPerUnit = 0;
    int totalInstructions = 0;   ///< whole-kernel static code size.
    int hotLoopInstructions = 0; ///< largest loop body code size.
    int maxLive = 0;             ///< worst per-cluster MaxLive.
    bool icacheOk = true;
    bool registersOk = true;
    double opsPerUnit = 0;       ///< dynamic operations (for GOPS).
    /** Measured code size from the ISA encoder (not an estimate). */
    int64_t codeWords = 0;
    int64_t codeBytes = 0;
    int64_t nopSlots = 0;
    /** Groups whose II search exhausted its budget; nonzero marks
     *  the whole cell degraded (reports show `~`, JSON and ledger
     *  manifests carry the flag, and the cell is never cached). */
    int degradedRegions = 0;
    std::vector<RegionCost> regions;

    std::string str() const;
};

/**
 * Materialize a loop's control operations (induction update, bound
 * compare, back-edge branch); shared by the composer and the cycle
 * simulator so both cost identical code.
 */
std::vector<Operation> loopControlOps(Function &fn,
                                      const LoopNode &loop);

/** Whether a loop is software-pipelineable under the given mode. */
bool swpEligibleLoop(const LoopNode &loop, ScheduleMode mode);

/** Frame-level cycle composer. */
class Composer
{
  public:
    Composer(const MachineModel &machine, ScheduleMode mode);

    /**
     * Compose the cost of one kernel unit. The function may gain
     * fresh vregs/ops (materialized loop control); the tree itself
     * is not restructured.
     *
     * Every scheduled group is also run through the ISA encoder:
     * RegionCost::instructions and the code-size totals come from
     * the encoder's actual word count (asserted equal to the
     * scheduler's estimate). When `rehydrate` carries a previously
     * encoded module whose sections match the groups this walk
     * produces (checked per section by op count + semantic hash),
     * matching groups skip scheduling entirely and take their
     * headers from the module; mismatches fall back to scheduling.
     * When `emit` is non-null it receives the encoded module.
     */
    CompositionResult compose(Function &fn, const AvgProfile &profile,
                              const IsaModule *rehydrate = nullptr,
                              IsaModule *emit = nullptr);

  private:
    struct Walker;

    const MachineModel &machine_;
    ScheduleMode mode_;
};

} // namespace vvsp

#endif // VVSP_KERNELS_COMPOSER_HH
