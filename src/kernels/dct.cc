/**
 * @file
 * Two-dimensional 8x8 DCT kernels (paper Sec. 3.4.3, Tables 1-2).
 *
 * One unit = one 8x8 block of level-shifted pixels (-128..127).
 *
 * Fixed-point design ("The DCT requires multiplying numbers greater
 * than 8 bits in length", Sec. 3.4.3): stage-1 cosine coefficients
 * are 9-bit s.9 values (up to +-251) and the intermediate transform
 * values are 11-bit, so on the Table 1 models every multiply lowers
 * to the 6-operation 16x8 partial form - the paper's "less than
 * complete 16x16 multiplies" - while the M16 models of Table 2 do
 * each in a single 2-cycle operation. Scaling shifts are chosen so
 * no accumulator can wrap for ANY input (loose-bound safe); the
 * golden references compute identical arithmetic.
 *
 *  - Traditional: direct quadruple-loop sum. The unoptimized variant
 *    forms the basis product C[u][y]*C[v][x] on the fly; optimized
 *    variants read a precomputed 4096-entry basis table.
 *  - Row/column: eight row DCTs into a transposed temporary, then
 *    eight column DCTs. The "+arithmetic optimization" variant is
 *    the paper's numerical analysis: even/odd cosine symmetry halves
 *    the multiplies and reduced-precision 8-bit immediate
 *    coefficients replace table loads.
 */

#include "kernels/kernel.hh"

#include "ir/builder.hh"

#include <array>
#include <cmath>
#include <map>
#include <mutex>

#include "support/logging.hh"
#include "video/synthetic.hh"
#include "xform/passes.hh"

namespace vvsp
{

namespace
{

Operand
R(Vreg v)
{
    return Operand::ofReg(v);
}

Operand
K(int32_t v)
{
    return Operand::ofImm(v);
}

/** 16-bit wrap helper matching alu16 semantics. */
int
w16(int v)
{
    return static_cast<int16_t>(static_cast<uint16_t>(v));
}

/** Cosine coefficient tables: s.9 (9-bit) and s.6 (8-bit). */
const std::array<int, 64> &
dctCoef9()
{
    static const std::array<int, 64> table = [] {
        std::array<int, 64> t{};
        for (int u = 0; u < 8; ++u) {
            double alpha = u == 0 ? std::sqrt(1.0 / 8.0) : 0.5;
            for (int i = 0; i < 8; ++i) {
                t[static_cast<size_t>(u * 8 + i)] =
                    static_cast<int>(std::lround(
                        512.0 * alpha *
                        std::cos((2 * i + 1) * u * M_PI / 16.0)));
            }
        }
        return t;
    }();
    return table;
}

const std::array<int, 64> &
dctCoef6()
{
    static const std::array<int, 64> table = [] {
        std::array<int, 64> t{};
        for (int u = 0; u < 8; ++u) {
            double alpha = u == 0 ? std::sqrt(1.0 / 8.0) : 0.5;
            for (int i = 0; i < 8; ++i) {
                t[static_cast<size_t>(u * 8 + i)] =
                    static_cast<int>(std::lround(
                        64.0 * alpha *
                        std::cos((2 * i + 1) * u * M_PI / 16.0)));
            }
        }
        return t;
    }();
    return table;
}

/** Precomputed basis B[u][v][y][x] = (c9[u][y]*c6[v][x]) >> 5. */
const std::array<int, 4096> &
dctBasis()
{
    static const std::array<int, 4096> table = [] {
        std::array<int, 4096> t{};
        const auto &c9 = dctCoef9();
        const auto &c6 = dctCoef6();
        for (int u = 0; u < 8; ++u) {
            for (int v = 0; v < 8; ++v) {
                for (int y = 0; y < 8; ++y) {
                    for (int x = 0; x < 8; ++x) {
                        int bb =
                            w16(c9[static_cast<size_t>(u * 8 + y)] *
                                c6[static_cast<size_t>(v * 8 + x)]);
                        t[static_cast<size_t>(
                            ((u * 8 + v) * 64) + y * 8 + x)] =
                            w16(bb) >> 5;
                    }
                }
            }
        }
        return t;
    }();
    return table;
}

// ---------------------------------------------------------------------
// Row/column kernel. Scales: term1 >>4, t = acc1 >>4 (= 2*X1),
// term2 >>3, out = acc2 >>4 (= X2). All loose bounds < 32768.
// ---------------------------------------------------------------------

Function
buildRowCol()
{
    IRBuilder b("dct_rowcol");
    int in = b.buffer("in", 64, -128, 127);
    int c9 = b.buffer("coef9", 64, -256, 256);
    int c6 = b.buffer("coef6", 64, -32, 32);
    int tmp = b.buffer("tmp", 64, -1024, 1023);
    int out = b.buffer("out", 64);

    auto &r1 = b.beginLoop(8, "row");
    {
        Vreg base = b.shl(R(r1.inductionVar), K(3));
        auto &u1 = b.beginLoop(8, "u");
        {
            Vreg cb = b.shl(R(u1.inductionVar), K(3));
            Vreg acc = b.movi(0);
            auto &i1 = b.beginLoop(8, "mac");
            {
                Vreg x = b.load(in, R(base), R(i1.inductionVar), 0,
                                true);
                Vreg c = b.load(c9, R(cb), R(i1.inductionVar), 1,
                                true);
                Vreg p = b.mul16(R(x), R(c));
                Vreg term = b.sra(R(p), K(4));
                b.emitTo(acc, Opcode::Add, R(acc), R(term));
            }
            b.endLoop();
            Vreg t = b.sra(R(acc), K(4));
            b.store(tmp, R(t), R(cb), R(r1.inductionVar), 2, true);
        }
        b.endLoop();
    }
    b.endLoop();

    auto &r2 = b.beginLoop(8, "row2");
    {
        Vreg base = b.shl(R(r2.inductionVar), K(3));
        auto &u2 = b.beginLoop(8, "u2");
        {
            Vreg cb = b.shl(R(u2.inductionVar), K(3));
            Vreg acc = b.movi(0);
            auto &i2 = b.beginLoop(8, "mac2");
            {
                Vreg x = b.load(tmp, R(base), R(i2.inductionVar), 2,
                                true);
                Vreg c = b.load(c6, R(cb), R(i2.inductionVar), 1,
                                true);
                Vreg p = b.mul16(R(x), R(c));
                Vreg term = b.sra(R(p), K(3));
                b.emitTo(acc, Opcode::Add, R(acc), R(term));
            }
            b.endLoop();
            Vreg o = b.sra(R(acc), K(4));
            b.store(out, R(o), R(cb), R(r2.inductionVar), 0, true);
        }
        b.endLoop();
    }
    b.endLoop();
    return b.finish();
}

void
goldenRowCol(const Function &fn, MemoryImage &mem)
{
    int in = bufferIdByName(fn, "in");
    int c9 = bufferIdByName(fn, "coef9");
    int c6 = bufferIdByName(fn, "coef6");
    int tmpb = bufferIdByName(fn, "tmp");
    int out = bufferIdByName(fn, "out");

    auto rd = [&mem](int buf, int a) {
        return static_cast<int>(
            static_cast<int16_t>(mem.read(buf, a)));
    };
    for (int r = 0; r < 8; ++r) {
        for (int u = 0; u < 8; ++u) {
            int acc = 0;
            for (int i = 0; i < 8; ++i) {
                int p = w16(rd(in, r * 8 + i) * rd(c9, u * 8 + i));
                acc = w16(acc + (w16(p) >> 4));
            }
            mem.write(tmpb, u * 8 + r,
                      static_cast<uint16_t>(w16(acc) >> 4));
        }
    }
    for (int r = 0; r < 8; ++r) {
        for (int u = 0; u < 8; ++u) {
            int acc = 0;
            for (int i = 0; i < 8; ++i) {
                int p = w16(rd(tmpb, r * 8 + i) * rd(c6, u * 8 + i));
                acc = w16(acc + (w16(p) >> 3));
            }
            mem.write(out, u * 8 + r,
                      static_cast<uint16_t>(w16(acc) >> 4));
        }
    }
}

// ---------------------------------------------------------------------
// "+arithmetic optimization" row/column: even/odd symmetry, 8-bit
// immediate coefficients (reduced precision). Scales: term1 >>1,
// t = acc1 >>4, s2 pre-scaled >>1, term2 >>3, out = acc2 >>3.
// ---------------------------------------------------------------------

void
emitFastDct8(IRBuilder &b, const std::array<Vreg, 8> &x,
             const std::function<void(int u, Vreg val)> &sink,
             bool stage2)
{
    const auto &c = dctCoef6();
    std::array<Vreg, 4> s{}, d{};
    for (int k = 0; k < 4; ++k) {
        Vreg sum = b.add(R(x[static_cast<size_t>(k)]),
                         R(x[static_cast<size_t>(7 - k)]));
        Vreg diff = b.sub(R(x[static_cast<size_t>(k)]),
                          R(x[static_cast<size_t>(7 - k)]));
        if (stage2) {
            sum = b.sra(R(sum), K(1));
            diff = b.sra(R(diff), K(1));
        }
        s[static_cast<size_t>(k)] = sum;
        d[static_cast<size_t>(k)] = diff;
    }
    for (int u = 0; u < 8; ++u) {
        const auto &half = (u % 2 == 0) ? s : d;
        Vreg acc = kNoVreg;
        for (int k = 0; k < 4; ++k) {
            int cv = c[static_cast<size_t>(u * 8 + k)];
            Vreg p = b.mul16(R(half[static_cast<size_t>(k)]), K(cv));
            Vreg term = b.sra(R(p), K(stage2 ? 3 : 1));
            acc = acc == kNoVreg ? term : b.add(R(acc), R(term));
        }
        sink(u, acc);
    }
}

Function
buildRowColFast()
{
    IRBuilder b("dct_rowcol.fast");
    int in = b.buffer("in", 64, -128, 127);
    int tmp = b.buffer("tmp", 64, -1024, 1023);
    int out = b.buffer("out", 64);

    auto &r1 = b.beginLoop(8, "row");
    {
        Vreg base = b.shl(R(r1.inductionVar), K(3));
        std::array<Vreg, 8> x{};
        Vreg p = b.mov(R(base));
        for (int i = 0; i < 8; ++i) {
            x[static_cast<size_t>(i)] =
                b.load(in, R(p), Operand::none(), 0, true);
            if (i != 7)
                b.emitTo(p, Opcode::Add, R(p), K(1));
        }
        emitFastDct8(b, x,
                     [&](int u, Vreg val) {
                         Vreg t = b.sra(R(val), K(4));
                         b.store(tmp, R(t), K(u * 8),
                                 R(r1.inductionVar), 2, true);
                     },
                     false);
    }
    b.endLoop();

    auto &r2 = b.beginLoop(8, "row2");
    {
        Vreg base = b.shl(R(r2.inductionVar), K(3));
        std::array<Vreg, 8> x{};
        Vreg p = b.mov(R(base));
        for (int i = 0; i < 8; ++i) {
            x[static_cast<size_t>(i)] =
                b.load(tmp, R(p), Operand::none(), 2, true);
            if (i != 7)
                b.emitTo(p, Opcode::Add, R(p), K(1));
        }
        emitFastDct8(b, x,
                     [&](int u, Vreg val) {
                         Vreg o = b.sra(R(val), K(3));
                         b.store(out, R(o), K(u * 8),
                                 R(r2.inductionVar), 0, true);
                     },
                     true);
    }
    b.endLoop();
    return b.finish();
}

void
goldenRowColFast(const Function &fn, MemoryImage &mem)
{
    int in = bufferIdByName(fn, "in");
    int tmpb = bufferIdByName(fn, "tmp");
    int out = bufferIdByName(fn, "out");
    const auto &c = dctCoef6();

    auto rd = [&mem](int buf, int a) {
        return static_cast<int>(
            static_cast<int16_t>(mem.read(buf, a)));
    };
    auto fast8 = [&c](const std::array<int, 8> &x, bool stage2,
                      std::array<int, 8> &outv) {
        std::array<int, 4> s{}, d{};
        for (int k = 0; k < 4; ++k) {
            int sum = w16(x[static_cast<size_t>(k)] +
                          x[static_cast<size_t>(7 - k)]);
            int diff = w16(x[static_cast<size_t>(k)] -
                           x[static_cast<size_t>(7 - k)]);
            if (stage2) {
                sum = w16(sum) >> 1;
                diff = w16(diff) >> 1;
            }
            s[static_cast<size_t>(k)] = sum;
            d[static_cast<size_t>(k)] = diff;
        }
        for (int u = 0; u < 8; ++u) {
            const auto &half = (u % 2 == 0) ? s : d;
            int acc = 0;
            bool first = true;
            for (int k = 0; k < 4; ++k) {
                int p = w16(half[static_cast<size_t>(k)] *
                            c[static_cast<size_t>(u * 8 + k)]);
                int term = w16(p) >> (stage2 ? 3 : 1);
                acc = first ? w16(term) : w16(acc + term);
                first = false;
            }
            outv[static_cast<size_t>(u)] = acc;
        }
    };

    for (int r = 0; r < 8; ++r) {
        std::array<int, 8> x{}, o{};
        for (int i = 0; i < 8; ++i)
            x[static_cast<size_t>(i)] = rd(in, r * 8 + i);
        fast8(x, false, o);
        for (int u = 0; u < 8; ++u) {
            mem.write(tmpb, u * 8 + r,
                      static_cast<uint16_t>(
                          w16(o[static_cast<size_t>(u)]) >> 4));
        }
    }
    for (int r = 0; r < 8; ++r) {
        std::array<int, 8> x{}, o{};
        for (int i = 0; i < 8; ++i)
            x[static_cast<size_t>(i)] = rd(tmpb, r * 8 + i);
        fast8(x, true, o);
        for (int u = 0; u < 8; ++u) {
            mem.write(out, u * 8 + r,
                      static_cast<uint16_t>(
                          w16(o[static_cast<size_t>(u)]) >> 3));
        }
    }
}

// ---------------------------------------------------------------------
// Traditional (direct 2-D) kernel. Scales: B = (c9*c6) >>5 (9-bit),
// term = (p*B) >>6, out = acc >>4. Loose bounds < 32768 everywhere.
// ---------------------------------------------------------------------

Function
buildTraditional(bool basis_table)
{
    IRBuilder b(basis_table ? "dct_trad.table" : "dct_trad");
    int in = b.buffer("in", 64, -128, 127);
    int c9 = -1, c6 = -1, basis = -1;
    if (basis_table)
        basis = b.buffer("basis", 4096, -256, 256);
    else {
        c9 = b.buffer("coef9", 64, -256, 256);
        c6 = b.buffer("coef6", 64, -32, 32);
    }
    int out = b.buffer("out", 64);

    auto &v = b.beginLoop(8, "v");
    {
        Vreg cv = b.shl(R(v.inductionVar), K(3));
        auto &u = b.beginLoop(8, "u");
        {
            Vreg cu = b.shl(R(u.inductionVar), K(3));
            Vreg acc = b.movi(0);
            // Basis-table row base: ((u*8+v)*64).
            Vreg brow = kNoVreg;
            if (basis_table) {
                Vreg uv = b.add(R(cu), R(v.inductionVar));
                brow = b.shl(R(uv), K(6));
            }
            auto &y = b.beginLoop(8, "y");
            {
                Vreg py = b.shl(R(y.inductionVar), K(3));
                Vreg c1 = kNoVreg, bybase = kNoVreg;
                if (basis_table)
                    bybase = b.add(R(brow), R(py));
                else
                    c1 = b.load(c9, R(cu), R(y.inductionVar), 1,
                                true);
                auto &x = b.beginLoop(8, "x");
                {
                    Vreg p = b.load(in, R(py), R(x.inductionVar), 0,
                                    true);
                    Vreg bs;
                    if (basis_table) {
                        bs = b.load(basis, R(bybase),
                                    R(x.inductionVar), 2, true);
                    } else {
                        Vreg c2 = b.load(c6, R(cv),
                                         R(x.inductionVar), 1, true);
                        Vreg bb = b.mul16(R(c1), R(c2));
                        bs = b.sra(R(bb), K(5));
                    }
                    Vreg m = b.mul16(R(p), R(bs));
                    Vreg ms = b.sra(R(m), K(6));
                    b.emitTo(acc, Opcode::Add, R(acc), R(ms));
                }
                b.endLoop();
            }
            b.endLoop();
            Vreg o = b.sra(R(acc), K(4));
            b.store(out, R(o), R(cu), R(v.inductionVar), 0, true);
        }
        b.endLoop();
    }
    b.endLoop();
    return b.finish();
}

void
goldenTraditional(const Function &fn, MemoryImage &mem)
{
    int in = bufferIdByName(fn, "in");
    int out = bufferIdByName(fn, "out");
    const auto &basis = dctBasis();
    auto rd = [&mem](int buf, int a) {
        return static_cast<int>(
            static_cast<int16_t>(mem.read(buf, a)));
    };
    // Whether formed on the fly or loaded, the basis values are the
    // same dctBasis() numbers (prepare fills the table identically).
    for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
            int acc = 0;
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    int bs = basis[static_cast<size_t>(
                        ((u * 8 + v) * 64) + y * 8 + x)];
                    int m = w16(rd(in, y * 8 + x) * bs);
                    acc = w16(acc + (w16(m) >> 6));
                }
            }
            mem.write(out, u * 8 + v,
                      static_cast<uint16_t>(w16(acc) >> 4));
        }
    }
}

/**
 * "+arithmetic optimization" traditional: register-resident block,
 * build-time basis immediates, small terms pruned (|B| <= 2).
 */
Function
buildTraditionalOpt()
{
    IRBuilder b2("dct_trad.opt");
    int in = b2.buffer("in", 64, -128, 127);
    int out = b2.buffer("out", 64);
    const auto &basis = dctBasis();

    std::array<Vreg, 64> px{};
    Vreg p = b2.movi(0);
    for (int i = 0; i < 64; ++i) {
        px[static_cast<size_t>(i)] =
            b2.load(in, R(p), Operand::none(), 0, true);
        if (i != 63)
            b2.emitTo(p, Opcode::Add, R(p), K(1));
    }
    for (int u = 0; u < 8; ++u) {
        for (int v2 = 0; v2 < 8; ++v2) {
            Vreg acc = kNoVreg;
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    int bs = basis[static_cast<size_t>(
                        ((u * 8 + v2) * 64) + y * 8 + x)];
                    if (bs >= -2 && bs <= 2)
                        continue; // pruned small term.
                    Vreg m = b2.mul16(
                        R(px[static_cast<size_t>(y * 8 + x)]), K(bs));
                    Vreg ms = b2.sra(R(m), K(6));
                    acc = acc == kNoVreg ? ms : b2.add(R(acc), R(ms));
                }
            }
            Vreg o = b2.sra(R(acc), K(4));
            b2.store(out, R(o), K(u * 8 + v2), Operand::none(), 0,
                     true);
        }
    }
    return b2.finish();
}

void
goldenTraditionalOpt(const Function &fn, MemoryImage &mem)
{
    int in = bufferIdByName(fn, "in");
    int out = bufferIdByName(fn, "out");
    const auto &basis = dctBasis();
    auto rd = [&mem](int buf, int a) {
        return static_cast<int>(
            static_cast<int16_t>(mem.read(buf, a)));
    };
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            int acc = 0;
            bool first = true;
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    int bs = basis[static_cast<size_t>(
                        ((u * 8 + v) * 64) + y * 8 + x)];
                    if (bs >= -2 && bs <= 2)
                        continue;
                    int m = w16(rd(in, y * 8 + x) * bs);
                    int ms = w16(m) >> 6;
                    acc = first ? w16(ms) : w16(acc + ms);
                    first = false;
                }
            }
            mem.write(out, u * 8 + v,
                      static_cast<uint16_t>(w16(acc) >> 4));
        }
    }
}

// ---------------------------------------------------------------------
// Shared prepare.
// ---------------------------------------------------------------------

const Plane &
lumaFor(const FrameGeometry &geom)
{
    // Shared across sweep workers; map nodes are stable, so the
    // reference stays valid after the lock is released.
    static std::map<std::pair<int, int>, Plane> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(geom.width, geom.height);
    auto it = cache.find(key);
    if (it == cache.end()) {
        SyntheticVideo video(geom.width, geom.height, 11);
        it = cache.emplace(key, video.lumaFrame(0)).first;
    }
    return it->second;
}

void
prepareDctUnit(const Function &fn, MemoryImage &mem,
               const FrameGeometry &geom, int index)
{
    const Plane &luma = lumaFor(geom);
    int bw = geom.width / 8;
    int bh = geom.height / 8;
    int bx = index % bw;
    int by = (index / bw) % bh;

    std::vector<uint16_t> block(64);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            int v = static_cast<int>(luma.at(bx * 8 + x, by * 8 + y)) -
                    128;
            block[static_cast<size_t>(y * 8 + x)] =
                static_cast<uint16_t>(v);
        }
    }
    fillAllByName(fn, mem, "in", block);

    auto fill16 = [&](const std::string &name, const int *data,
                      int n) {
        for (const auto &buf : fn.buffers) {
            if (buf.name != name)
                continue;
            std::vector<uint16_t> words(static_cast<size_t>(n));
            for (int i = 0; i < n; ++i) {
                words[static_cast<size_t>(i)] = static_cast<uint16_t>(
                    static_cast<int16_t>(data[i]));
            }
            mem.fill(buf.id, 0, words);
        }
    };
    fill16("coef9", dctCoef9().data(), 64);
    fill16("coef6", dctCoef6().data(), 64);
    fill16("basis", dctBasis().data(), 4096);
}

double
codedBlocksPerFrame(const FrameGeometry &geom)
{
    return geom.codedBlocks();
}

// ---------------------------------------------------------------------
// Transform recipes.
// ---------------------------------------------------------------------

void
unrollLabels(Function &fn, const std::vector<std::string> &labels)
{
    for (const auto &label : labels) {
        while (LoopNode *loop = passes::findLoop(fn, label))
            passes::unrollLoop(fn, *loop, 0);
    }
    passes::licm(fn);
    passes::cleanup(fn);
}

} // anonymous namespace

KernelSpec
makeDctTraditionalKernel()
{
    KernelSpec k;
    k.name = "DCT - traditional";
    k.unitsPerFrame = codedBlocksPerFrame;
    k.outputBuffers = {"out"};
    k.prepare = prepareDctUnit;
    k.golden = goldenTraditional;

    k.variants.push_back({"Sequential-unoptimized",
                          ScheduleMode::Sequential, false, 1, false,
                          false, [] { return buildTraditional(false); },
                          [](Function &fn) { passes::licm(fn); },
                          nullptr});
    k.variants.push_back({"Unrolled inner loop",
                          ScheduleMode::Sequential, false, 1, false,
                          false, [] { return buildTraditional(true); },
                          [](Function &fn) {
                              unrollLabels(fn, {"x"});
                          },
                          nullptr});
    k.variants.push_back({"List Scheduled", ScheduleMode::Wide, true,
                          1, false, false,
                          [] { return buildTraditional(true); },
                          [](Function &fn) {
                              unrollLabels(fn, {"x"});
                          },
                          nullptr});
    k.variants.push_back({"SW pipelined & predicated",
                          ScheduleMode::Swp, true, 1, false, false,
                          [] { return buildTraditional(true); },
                          [](Function &fn) {
                              // Pipeline whole-output iterations (the
                              // u loop); pipelining the tiny MAC loop
                              // would drown in prologue/epilogue.
                              unrollLabels(fn, {"x", "y"});
                              passes::ifConvert(fn);
                          },
                          nullptr});
    k.variants.push_back({"+arithmetic optimization",
                          ScheduleMode::Swp, true, 1, false, false,
                          buildTraditionalOpt,
                          [](Function &fn) { passes::cleanup(fn); },
                          goldenTraditionalOpt});
    k.variants.push_back({"+unroll 2 levels & widen",
                          ScheduleMode::Swp, true, 4, false, false,
                          [] { return buildTraditional(true); },
                          [](Function &fn) {
                              // Unrolling u exposes eight output
                              // trees per v iteration for the
                              // four-cluster partition.
                              unrollLabels(fn, {"x", "y", "u"});
                          },
                          nullptr});
    return k;
}

KernelSpec
makeDctRowColKernel()
{
    KernelSpec k;
    k.name = "DCT - row/column";
    k.unitsPerFrame = codedBlocksPerFrame;
    k.outputBuffers = {"out"};
    k.prepare = prepareDctUnit;
    k.golden = goldenRowCol;

    k.variants.push_back({"Sequential-unoptimized",
                          ScheduleMode::Sequential, false, 1, false,
                          false, buildRowCol,
                          [](Function &fn) { passes::licm(fn); },
                          nullptr});
    k.variants.push_back({"Unrolled inner loop",
                          ScheduleMode::Sequential, false, 1, false,
                          false, buildRowCol,
                          [](Function &fn) {
                              unrollLabels(fn, {"mac", "mac2"});
                          },
                          nullptr});
    k.variants.push_back({"List Scheduled", ScheduleMode::Wide, true,
                          1, false, false, buildRowCol,
                          [](Function &fn) {
                              unrollLabels(fn, {"mac", "mac2"});
                          },
                          nullptr});
    k.variants.push_back({"SW pipelined & predicated",
                          ScheduleMode::Swp, true, 1, false, false,
                          buildRowCol,
                          [](Function &fn) {
                              unrollLabels(fn,
                                           {"mac", "mac2", "u", "u2"});
                              passes::ifConvert(fn);
                          },
                          nullptr});
    k.variants.push_back({"+arithmetic optimization",
                          ScheduleMode::Swp, true, 1, false, false,
                          buildRowColFast,
                          [](Function &fn) { passes::cleanup(fn); },
                          goldenRowColFast});
    k.variants.push_back({"+unroll 2 levels & widen",
                          ScheduleMode::Swp, true, 4, false, false,
                          buildRowCol,
                          [](Function &fn) {
                              unrollLabels(fn,
                                           {"mac", "mac2", "u", "u2"});
                          },
                          nullptr});
    return k;
}

} // namespace vvsp
