#include "kernels/kernel.hh"

#include "support/logging.hh"

namespace vvsp
{

const VariantSpec &
KernelSpec::variant(const std::string &vname) const
{
    for (const auto &v : variants) {
        if (v.name == vname)
            return v;
    }
    vvsp_fatal("kernel '%s' has no variant '%s'", name.c_str(),
               vname.c_str());
}

const std::vector<KernelSpec> &
allKernels()
{
    static const std::vector<KernelSpec> kernels = [] {
        std::vector<KernelSpec> k;
        k.push_back(makeFullSearchKernel());
        k.push_back(makeThreeStepKernel());
        k.push_back(makeDctTraditionalKernel());
        k.push_back(makeDctRowColKernel());
        k.push_back(makeColorConvertKernel());
        k.push_back(makeVbrKernel());
        return k;
    }();
    return kernels;
}

const KernelSpec &
kernelByName(const std::string &name)
{
    for (const auto &k : allKernels()) {
        if (k.name == name)
            return k;
    }
    vvsp_fatal("unknown kernel '%s'", name.c_str());
}

int
bufferIdByName(const Function &fn, const std::string &name)
{
    for (const auto &b : fn.buffers) {
        if (b.name == name)
            return b.id;
    }
    vvsp_panic("function '%s' has no buffer '%s'", fn.name.c_str(),
               name.c_str());
}

void
fillAllByName(const Function &fn, MemoryImage &mem,
              const std::string &name,
              const std::vector<uint16_t> &data)
{
    bool found = false;
    for (const auto &b : fn.buffers) {
        if (b.name == name) {
            mem.fill(b.id, 0, data);
            found = true;
        }
    }
    vvsp_assert(found, "function '%s' has no buffer '%s'",
                fn.name.c_str(), name.c_str());
}

} // namespace vvsp
