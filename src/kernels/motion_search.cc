/**
 * @file
 * Motion-estimation kernels: Full Motion Search and Three-step
 * Search (paper Sec. 3.3, first two Table 1 sections).
 *
 * One unit = one 16x16 macroblock matched against a 32x32
 * edge-padded search window of the previous frame (displacements
 * dx, dy in [-8, 7], stored as window indices 0..15). Both kernels
 * share the SAD inner loop; the three-step search replaces the
 * exhaustive displacement scan with three data-dependent refinement
 * steps of 9/8/8 candidates.
 *
 * Variant coding styles follow the paper's hand schedules:
 *  - sequential rows use strength-reduced pointer addressing (the
 *    induction variable is the array pointer), which is why their
 *    cycle counts are identical on every datapath model;
 *  - unrolled rows use indexed addressing, which complex-addressing
 *    models fold into the loads;
 *  - the blocked full search keeps a window row and the per-dx SAD
 *    accumulators in registers, eliminating >90% of the loads.
 */

#include "kernels/kernel.hh"

#include "ir/builder.hh"

#include <array>
#include <map>
#include <mutex>

#include "support/logging.hh"
#include "video/mpeg.hh"
#include "video/synthetic.hh"
#include "xform/passes.hh"

namespace vvsp
{

namespace
{

constexpr int kWinStride = 32;

using OpRef = Operand;

OpRef
R(Vreg v)
{
    return Operand::ofReg(v);
}

OpRef
K(int32_t v)
{
    return Operand::ofImm(v);
}

/** Emit |a-b| with or without the special ALU op; returns result. */
Vreg
emitAbsDiff(IRBuilder &b, OpRef a, OpRef c, bool use_absdiff)
{
    if (use_absdiff)
        return b.emit(Opcode::AbsDiff, a, c);
    Vreg d = b.sub(a, c);
    return b.abs(R(d));
}

// ---------------------------------------------------------------------
// Full Motion Search builders.
// ---------------------------------------------------------------------

/**
 * Baseline structure, pointer-addressed SAD inner loop:
 * identical operation counts on every datapath model.
 */
Function
buildFullSearchPointer(bool use_absdiff)
{
    IRBuilder b("full_search.seq");
    int cur = b.buffer("cur", 256);
    int win = b.buffer("win", kWinStride * 32);
    int out = b.buffer("out", 4);

    Vreg best = b.movi(0xffff); // SADs compare unsigned (CmpLtU).
    Vreg bestdx = b.movi(0);
    Vreg bestdy = b.movi(0);

    auto &dy = b.beginLoop(16, "dy");
    auto &dx = b.beginLoop(16, "dx");
    {
        // Window base for this displacement: dy*32 + dx.
        Vreg wb0 = b.shl(R(dy.inductionVar), K(5));
        Vreg wbase = b.add(R(wb0), R(dx.inductionVar));
        Vreg sad = b.movi(0);

        auto &y = b.beginLoop(16, "y");
        {
            // cur row pointer doubles as the x loop variable.
            Vreg cy = b.shl(R(y.inductionVar), K(4));
            Vreg cend = b.add(R(cy), K(16));
            Vreg wy0 = b.shl(R(y.inductionVar), K(5));
            Vreg wrow = b.add(R(wbase), R(wy0));
            Vreg wp = b.mov(R(wrow));

            auto &x = b.beginLoop(16, "x");
            x.ivInit = R(cy);
            x.boundVreg = cend;
            {
                Vreg a = b.load(cur, R(x.inductionVar), OpRef::none(),
                                0, true);
                Vreg w = b.load(win, R(wp), OpRef::none(), 0, true);
                Vreg ad = emitAbsDiff(b, R(a), R(w), use_absdiff);
                b.emitTo(sad, Opcode::Add, R(sad), R(ad));
                b.emitTo(wp, Opcode::Add, R(wp), K(1));
            }
            b.endLoop();
        }
        b.endLoop();

        Vreg less = b.emit(Opcode::CmpLtU, R(sad), R(best));
        b.beginIf(R(less));
        {
            b.emitTo(best, Opcode::Mov, R(sad));
            b.emitTo(bestdx, Opcode::Mov, R(dx.inductionVar));
            b.emitTo(bestdy, Opcode::Mov, R(dy.inductionVar));
        }
        b.endIf();
    }
    b.endLoop();
    b.endLoop();

    b.store(out, R(best), K(0));
    b.store(out, R(bestdx), K(1));
    b.store(out, R(bestdy), K(2));
    return b.finish();
}

/**
 * Indexed-addressing structure for the unrolled and software-
 * pipelined rows: after unrolling, addresses become base + constant,
 * which the complex-addressing models fold into the loads.
 */
Function
buildFullSearchIndexed(bool use_absdiff)
{
    IRBuilder b("full_search.idx");
    int cur = b.buffer("cur", 256);
    int win = b.buffer("win", kWinStride * 32);
    int out = b.buffer("out", 4);

    Vreg best = b.movi(0xffff);
    Vreg bestdx = b.movi(0);
    Vreg bestdy = b.movi(0);

    auto &dy = b.beginLoop(16, "dy");
    auto &dx = b.beginLoop(16, "dx");
    {
        Vreg wb0 = b.shl(R(dy.inductionVar), K(5));
        Vreg wbase = b.add(R(wb0), R(dx.inductionVar));
        Vreg sad = b.movi(0);

        auto &y = b.beginLoop(16, "y");
        {
            Vreg cy = b.shl(R(y.inductionVar), K(4));
            Vreg wy0 = b.shl(R(y.inductionVar), K(5));
            Vreg wrow = b.add(R(wbase), R(wy0));

            auto &x = b.beginLoop(16, "x");
            {
                Vreg a = b.load(cur, R(cy), R(x.inductionVar), 0,
                                true);
                Vreg w = b.load(win, R(wrow), R(x.inductionVar), 0,
                                true);
                Vreg ad = emitAbsDiff(b, R(a), R(w), use_absdiff);
                b.emitTo(sad, Opcode::Add, R(sad), R(ad));
            }
            b.endLoop();
        }
        b.endLoop();

        Vreg less = b.emit(Opcode::CmpLtU, R(sad), R(best));
        b.beginIf(R(less));
        {
            b.emitTo(best, Opcode::Mov, R(sad));
            b.emitTo(bestdx, Opcode::Mov, R(dx.inductionVar));
            b.emitTo(bestdy, Opcode::Mov, R(dy.inductionVar));
        }
        b.endIf();
    }
    b.endLoop();
    b.endLoop();

    b.store(out, R(best), K(0));
    b.store(out, R(bestdx), K(1));
    b.store(out, R(bestdy), K(2));
    return b.finish();
}

/**
 * Blocked/loop-exchanged full search (Sec. 3.4.1): the dx loop moves
 * inside the pixel loops; a register-resident window row and sixteen
 * SAD accumulators make every window and macroblock pixel load once
 * per dy instead of once per (dy, dx).
 */
Function
buildFullSearchBlocked(bool use_absdiff)
{
    IRBuilder b("full_search.blk");
    int cur = b.buffer("cur", 256);
    int win = b.buffer("win", kWinStride * 32);
    int out = b.buffer("out", 4);

    Vreg best = b.movi(0xffff);
    Vreg bestdx = b.movi(0);
    Vreg bestdy = b.movi(0);

    auto &dy = b.beginLoop(16, "dy");
    {
        std::array<Vreg, 16> sad;
        for (auto &s : sad)
            s = b.movi(0);
        Vreg wb0 = b.shl(R(dy.inductionVar), K(5));

        auto &y = b.beginLoop(16, "y");
        {
            Vreg cy = b.shl(R(y.inductionVar), K(4));
            Vreg wy0 = b.shl(R(y.inductionVar), K(5));
            Vreg wrow = b.add(R(wb0), R(wy0));

            // Window row into registers via a walking pointer.
            std::array<Vreg, 31> w;
            Vreg wp = b.mov(R(wrow));
            for (int j = 0; j < 31; ++j) {
                w[static_cast<size_t>(j)] =
                    b.load(win, R(wp), OpRef::none(), 0, true);
                if (j != 30)
                    b.emitTo(wp, Opcode::Add, R(wp), K(1));
            }
            // One macroblock pixel at a time against all 16 dx.
            Vreg cp = b.mov(R(cy));
            for (int x = 0; x < 16; ++x) {
                Vreg a = b.load(cur, R(cp), OpRef::none(), 0, true);
                if (x != 15)
                    b.emitTo(cp, Opcode::Add, R(cp), K(1));
                for (int d = 0; d < 16; ++d) {
                    Vreg ad = emitAbsDiff(
                        b, R(a), R(w[static_cast<size_t>(x + d)]),
                        use_absdiff);
                    auto s = sad[static_cast<size_t>(d)];
                    b.emitTo(s, Opcode::Add, R(s), R(ad));
                }
            }
        }
        b.endLoop();

        // Fold the 16 accumulated positions into the running best,
        // in dx order (same tie-breaking as the exhaustive scan).
        for (int d = 0; d < 16; ++d) {
            Vreg less = b.emit(Opcode::CmpLtU,
                               R(sad[static_cast<size_t>(d)]),
                               R(best));
            b.beginIf(R(less));
            b.emitTo(best, Opcode::Mov,
                     R(sad[static_cast<size_t>(d)]));
            b.emitTo(bestdx, Opcode::Mov, K(d));
            b.emitTo(bestdy, Opcode::Mov, R(dy.inductionVar));
            b.endIf();
        }
    }
    b.endLoop();

    b.store(out, R(best), K(0));
    b.store(out, R(bestdx), K(1));
    b.store(out, R(bestdy), K(2));
    return b.finish();
}

/** Shared golden full search (all variants compute the same). */
void
goldenFullSearch(const Function &fn, MemoryImage &mem)
{
    int cur = bufferIdByName(fn, "cur");
    int win = bufferIdByName(fn, "win");
    int out = bufferIdByName(fn, "out");
    uint16_t best = 0xffff, bestdx = 0, bestdy = 0;
    for (int dy = 0; dy < 16; ++dy) {
        for (int dx = 0; dx < 16; ++dx) {
            uint32_t sad = 0;
            for (int y = 0; y < 16; ++y) {
                for (int x = 0; x < 16; ++x) {
                    int a = mem.read(cur, y * 16 + x);
                    int w = mem.read(win,
                                     (y + dy) * kWinStride + x + dx);
                    sad += static_cast<uint32_t>(
                        a > w ? a - w : w - a);
                }
            }
            uint16_t s16 = static_cast<uint16_t>(sad);
            if (s16 < best) {
                best = s16;
                bestdx = static_cast<uint16_t>(dx);
                bestdy = static_cast<uint16_t>(dy);
            }
        }
    }
    mem.write(out, 0, best);
    mem.write(out, 1, bestdx);
    mem.write(out, 2, bestdy);
}

// ---------------------------------------------------------------------
// Three-step search.
// ---------------------------------------------------------------------

/**
 * Three refinement steps (strides 4, 2, 1) around a moving center in
 * window coordinates (start 8,8; candidates stay in [1, 15]).
 * 9 candidates in step one, 8 in each later step (center already
 * evaluated).
 */
Function
buildThreeStep(bool use_absdiff, bool indexed)
{
    IRBuilder b(indexed ? "three_step.idx" : "three_step.seq");
    int cur = b.buffer("cur", 256);
    int win = b.buffer("win", kWinStride * 32);
    int out = b.buffer("out", 4);

    Vreg best = b.movi(0xffff);
    Vreg cx = b.movi(8);
    Vreg cy = b.movi(8);

    for (int stride : {4, 2, 1}) {
        // Winning offsets of this step.
        Vreg seldx = b.movi(0);
        Vreg seldy = b.movi(0);
        for (int k = 0; k < 9; ++k) {
            int ox = (k % 3 - 1) * stride;
            int oy = (k / 3 - 1) * stride;
            if (stride != 4 && ox == 0 && oy == 0)
                continue; // center already evaluated last step.
            Vreg px = b.add(R(cx), K(ox));
            Vreg py = b.add(R(cy), K(oy));
            Vreg wbase0 = b.shl(R(py), K(5));
            Vreg wbase = b.add(R(wbase0), R(px));
            Vreg sad = b.movi(0);

            auto &y = b.beginLoop(16, "y" + std::to_string(stride) +
                                          "_" + std::to_string(k));
            {
                Vreg cb = b.shl(R(y.inductionVar), K(4));
                Vreg wy0 = b.shl(R(y.inductionVar), K(5));
                Vreg wrow = b.add(R(wbase), R(wy0));
                if (indexed) {
                    auto &x = b.beginLoop(16, "x");
                    Vreg a = b.load(cur, R(cb), R(x.inductionVar), 0,
                                    true);
                    Vreg w = b.load(win, R(wrow), R(x.inductionVar),
                                    0, true);
                    Vreg ad = emitAbsDiff(b, R(a), R(w), use_absdiff);
                    b.emitTo(sad, Opcode::Add, R(sad), R(ad));
                    b.endLoop();
                } else {
                    Vreg cend = b.add(R(cb), K(16));
                    Vreg wp = b.mov(R(wrow));
                    auto &x = b.beginLoop(16, "x");
                    x.ivInit = R(cb);
                    x.boundVreg = cend;
                    Vreg a = b.load(cur, R(x.inductionVar),
                                    OpRef::none(), 0, true);
                    Vreg w = b.load(win, R(wp), OpRef::none(), 0,
                                    true);
                    Vreg ad = emitAbsDiff(b, R(a), R(w), use_absdiff);
                    b.emitTo(sad, Opcode::Add, R(sad), R(ad));
                    b.emitTo(wp, Opcode::Add, R(wp), K(1));
                    b.endLoop();
                }
            }
            b.endLoop();

            Vreg less = b.emit(Opcode::CmpLtU, R(sad), R(best));
            b.beginIf(R(less));
            b.emitTo(best, Opcode::Mov, R(sad));
            b.emitTo(seldx, Opcode::Mov, K(ox));
            b.emitTo(seldy, Opcode::Mov, K(oy));
            b.endIf();
        }
        b.emitTo(cx, Opcode::Add, R(cx), R(seldx));
        b.emitTo(cy, Opcode::Add, R(cy), R(seldy));
    }

    b.store(out, R(best), K(0));
    b.store(out, R(cx), K(1));
    b.store(out, R(cy), K(2));
    return b.finish();
}

/** Golden three-step search mirroring the builder's visit order. */
void
goldenThreeStep(const Function &fn, MemoryImage &mem)
{
    int cur = bufferIdByName(fn, "cur");
    int win = bufferIdByName(fn, "win");
    int out = bufferIdByName(fn, "out");

    auto sad_at = [&](int px, int py) {
        uint32_t sad = 0;
        for (int y = 0; y < 16; ++y) {
            for (int x = 0; x < 16; ++x) {
                int a = mem.read(cur, y * 16 + x);
                int w = mem.read(win, (py + y) * kWinStride + px + x);
                sad += static_cast<uint32_t>(a > w ? a - w : w - a);
            }
        }
        return static_cast<uint16_t>(sad);
    };

    uint16_t best = 0xffff;
    int cx = 8, cy = 8;
    for (int stride : {4, 2, 1}) {
        int seldx = 0, seldy = 0;
        for (int k = 0; k < 9; ++k) {
            int ox = (k % 3 - 1) * stride;
            int oy = (k / 3 - 1) * stride;
            if (stride != 4 && ox == 0 && oy == 0)
                continue;
            uint16_t s = sad_at(cx + ox, cy + oy);
            if (s < best) {
                best = s;
                seldx = ox;
                seldy = oy;
            }
        }
        cx += seldx;
        cy += seldy;
    }
    mem.write(out, 0, best);
    mem.write(out, 1, static_cast<uint16_t>(cx));
    mem.write(out, 2, static_cast<uint16_t>(cy));
}

// ---------------------------------------------------------------------
// Workload preparation (shared).
// ---------------------------------------------------------------------

struct FramePair
{
    Plane prev;
    Plane next;
};

const FramePair &
framesFor(const FrameGeometry &geom)
{
    // Shared across sweep workers; map nodes are stable, so the
    // reference stays valid after the lock is released.
    static std::map<std::pair<int, int>, FramePair> cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(geom.width, geom.height);
    auto it = cache.find(key);
    if (it == cache.end()) {
        SyntheticVideo video(geom.width, geom.height, 7);
        it = cache.emplace(key,
                           FramePair{video.lumaFrame(0),
                                     video.lumaFrame(1)})
                 .first;
    }
    return it->second;
}

void
prepareSearchUnit(const Function &fn, MemoryImage &mem,
                  const FrameGeometry &geom, int index)
{
    const FramePair &frames = framesFor(geom);
    int mbx = index % geom.macroblocksX();
    int mby = (index / geom.macroblocksX()) % geom.macroblocksY();
    fillAllByName(fn, mem, "cur",
                  extractMacroblock(frames.next, mbx, mby));
    fillAllByName(fn, mem, "win",
                  extractSearchWindow(frames.prev, mbx, mby));
}

double
macroblocksPerFrame(const FrameGeometry &geom)
{
    return geom.macroblocks();
}

// ---------------------------------------------------------------------
// Variant tables.
// ---------------------------------------------------------------------

void
transformSeq(Function &fn)
{
    passes::licm(fn);
    passes::ifConvert(fn);
    passes::cleanup(fn);
}

void
transformUnrollX(Function &fn)
{
    while (LoopNode *x = passes::findLoop(fn, "x"))
        passes::unrollLoop(fn, *x, 0);
    passes::licm(fn);
    passes::ifConvert(fn);
    passes::cleanup(fn);
}

void
transformUnrollXY(Function &fn)
{
    while (LoopNode *x = passes::findLoop(fn, "x"))
        passes::unrollLoop(fn, *x, 0);
    while (LoopNode *y = passes::findLoop(fn, "y"))
        passes::unrollLoop(fn, *y, 0);
    passes::licm(fn);
    passes::ifConvert(fn);
    passes::cleanup(fn);
}

void
transformBlocked(Function &fn)
{
    passes::licm(fn);
    passes::ifConvert(fn);
    passes::cleanup(fn);
}

} // anonymous namespace

KernelSpec
makeFullSearchKernel()
{
    KernelSpec k;
    k.name = "Full Motion Search";
    k.unitsPerFrame = macroblocksPerFrame;
    k.outputBuffers = {"out"};
    k.prepare = prepareSearchUnit;
    k.golden = goldenFullSearch;

    k.variants.push_back(
        {"Sequential-predicated", ScheduleMode::Sequential,
         /*replicate=*/false, 1, false, false,
         [] { return buildFullSearchPointer(false); }, transformSeq,
         nullptr});
    k.variants.push_back(
        {"Unrolled Inner Loop", ScheduleMode::Sequential, false, 1,
         false, false, [] { return buildFullSearchIndexed(false); },
         transformUnrollX, nullptr});
    k.variants.push_back(
        {"SW pipelined & unrolled", ScheduleMode::Swp, true, 1, false,
         false, [] { return buildFullSearchIndexed(false); },
         transformUnrollX, nullptr});
    k.variants.push_back(
        {"SW pipelined & unrolled 2 lev.", ScheduleMode::Swp, true, 1,
         false, false, [] { return buildFullSearchIndexed(false); },
         transformUnrollXY, nullptr});
    k.variants.push_back(
        {"Add spec. op (SW pipelined)", ScheduleMode::Swp, true, 1,
         false, true, [] { return buildFullSearchIndexed(true); },
         transformUnrollXY, nullptr});
    k.variants.push_back(
        {"Blocking/Loop Exchange", ScheduleMode::Swp, true, 1, false,
         false, [] { return buildFullSearchBlocked(false); },
         transformBlocked, nullptr});
    k.variants.push_back(
        {"Add spec. op (blocked)", ScheduleMode::Swp, true, 1, false,
         true, [] { return buildFullSearchBlocked(true); },
         transformBlocked, nullptr});
    return k;
}

KernelSpec
makeThreeStepKernel()
{
    KernelSpec k;
    k.name = "Three-step Search";
    k.unitsPerFrame = macroblocksPerFrame;
    k.outputBuffers = {"out"};
    k.prepare = prepareSearchUnit;
    k.golden = goldenThreeStep;

    k.variants.push_back(
        {"Sequential-predicated", ScheduleMode::Sequential, false, 1,
         false, false, [] { return buildThreeStep(false, false); },
         transformSeq, nullptr});
    k.variants.push_back(
        {"Unrolled Inner Loop", ScheduleMode::Sequential, false, 1,
         false, false, [] { return buildThreeStep(false, true); },
         transformUnrollX, nullptr});
    k.variants.push_back(
        {"SW pipelined & unrolled", ScheduleMode::Swp, true, 1, false,
         false, [] { return buildThreeStep(false, true); },
         transformUnrollX, nullptr});
    k.variants.push_back(
        {"SW pipelined & unrolled 2 lev.", ScheduleMode::Swp, true, 1,
         false, false, [] { return buildThreeStep(false, true); },
         transformUnrollXY, nullptr});
    k.variants.push_back(
        {"Add spec. op (SW pipelined)", ScheduleMode::Swp, true, 1,
         false, true, [] { return buildThreeStep(true, true); },
         transformUnrollXY, nullptr});
    // Blocked three-step: indexed addressing (the complex-addressing
    // models keep an edge here, unlike the blocked full search).
    k.variants.push_back(
        {"Blocking/Loop Exchange", ScheduleMode::Swp, true, 1, false,
         false, [] { return buildThreeStep(false, true); },
         transformUnrollXY, nullptr});
    k.variants.push_back(
        {"Add spec. op (blocked)", ScheduleMode::Swp, true, 1, false,
         true, [] { return buildThreeStep(true, true); },
         transformUnrollXY, nullptr});
    return k;
}

} // namespace vvsp
