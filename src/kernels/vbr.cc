/**
 * @file
 * Variable-Bit-Rate coder (paper Sec. 3.4.5): combined run-length +
 * Huffman coding of quantized 8x8 DCT blocks, the final lossless
 * stage of MPEG-style compression.
 *
 * One unit = one quantized coefficient block. The kernel zigzag-scans
 * the block; zero coefficients extend the current run, nonzero ones
 * emit a table codeword (run, level class) plus a sign bit into a
 * serial 16-bit bit buffer. The bit buffer and the run counter form
 * the long loop-carried dependence chains that cap this kernel's
 * parallelism at ~2.5x. Runs longer than 15 and levels beyond +-7
 * clamp to the table edge (a lossy simplification of the MPEG escape
 * mechanism; see DESIGN.md).
 *
 * Replication across clusters is impossible (bit positions depend on
 * all previous blocks), so parallel variants gang the whole machine,
 * as the paper's list scheduler did with "the entire 33-issue
 * machine".
 */

#include "kernels/kernel.hh"

#include "ir/builder.hh"

#include <array>
#include <cmath>
#include <map>
#include <mutex>

#include "support/logging.hh"
#include "video/mpeg.hh"
#include "video/synthetic.hh"
#include "xform/passes.hh"

namespace vvsp
{

namespace
{

Operand
R(Vreg v)
{
    return Operand::ofReg(v);
}

Operand
K(int32_t v)
{
    return Operand::ofImm(v);
}

/** Mutable coder state registers. */
struct BitState
{
    Vreg run, bitbuf, nbits, wpos;
};

/**
 * Emit the append of `len` (register or imm) bits of `code` into the
 * serial bit buffer, spilling completed 16-bit words.
 */
void
emitAppend(IRBuilder &b, int bits_buf, BitState &st, Operand code,
           Operand len)
{
    Vreg total = b.add(R(st.nbits), len);
    Vreg over = b.sub(R(total), K(16));
    Vreg ovf = b.cmpGe(R(over), K(0));
    b.beginIf(R(ovf));
    {
        Vreg hi = b.sub(len, R(over));
        Vreg w1 = b.shl(R(st.bitbuf), R(hi));
        Vreg w2 = b.shr(code, R(over));
        Vreg w = b.bor(R(w1), R(w2));
        b.store(bits_buf, R(w), R(st.wpos), Operand::none(), 0, true);
        b.emitTo(st.wpos, Opcode::Add, R(st.wpos), K(1));
        Vreg m1 = b.shl(K(1), R(over));
        Vreg mask = b.sub(R(m1), K(1));
        b.emitTo(st.bitbuf, Opcode::And, code, R(mask));
        b.emitTo(st.nbits, Opcode::Mov, R(over));
    }
    b.beginElse();
    {
        Vreg sh = b.shl(R(st.bitbuf), len);
        b.emitTo(st.bitbuf, Opcode::Or, R(sh), code);
        b.emitTo(st.nbits, Opcode::Mov, R(total));
    }
    b.endIf();
}

/**
 * Baseline VBR coder. phase_split selects the "+phase pipelining"
 * organization: classification into a temporary run/level list
 * (capped at 16 codewords per block), then a separate packing loop.
 */
Function
buildVbr(bool phase_split)
{
    IRBuilder b(phase_split ? "vbr.phase" : "vbr");
    int coef = b.buffer("coef", 64);
    int zig = b.buffer("zig", 64);
    int hlen = b.buffer("hlen", 128);
    int hcode = b.buffer("hcode", 128);
    int bits = b.buffer("bits", 128);
    int obits = b.buffer("obits", 4);
    int tmp = phase_split ? b.buffer("tmp", 64) : -1;

    BitState st;
    st.run = b.movi(0);
    st.bitbuf = b.movi(0);
    st.nbits = b.movi(0);
    st.wpos = b.movi(0);

    auto classify = [&](Vreg k_iv,
                        const std::function<void(Vreg idx, Vreg sign)>
                            &emit_codeword) {
        Vreg zi = b.load(zig, R(k_iv), Operand::none(), 1, true);
        Vreg c = b.load(coef, R(zi), Operand::none(), 2, false);
        Vreg isz = b.cmpEq(R(c), K(0));
        b.beginIf(R(isz));
        {
            b.emitTo(st.run, Opcode::Add, R(st.run), K(1));
        }
        b.beginElse();
        {
            Vreg ac = b.abs(R(c));
            Vreg sign = b.cmpLt(R(c), K(0));
            Vreg cls = b.min(R(ac), K(7));
            Vreg ridx = b.min(R(st.run), K(15));
            Vreg r8 = b.shl(R(ridx), K(3));
            Vreg idx = b.add(R(r8), R(cls));
            emit_codeword(idx, sign);
            b.emitTo(st.run, Opcode::Mov, K(0));
        }
        b.endIf();
    };

    if (!phase_split) {
        auto &scan = b.beginLoop(64, "scan");
        classify(scan.inductionVar, [&](Vreg idx, Vreg sign) {
            Vreg len = b.load(hlen, R(idx), Operand::none(), 3, false);
            Vreg code = b.load(hcode, R(idx), Operand::none(), 4,
                               false);
            // Fold the sign bit into the codeword off the serial
            // bit-buffer chain: one append per coefficient.
            Vreg code1 = b.shl(R(code), K(1));
            Vreg code2 = b.bor(R(code1), R(sign));
            Vreg len2 = b.add(R(len), K(1));
            emitAppend(b, bits, st, R(code2), R(len2));
        });
        b.endLoop();
    } else {
        // Phase 1: classify into (idx, sign) pairs, at most 16.
        Vreg count = b.movi(0);
        auto &scan = b.beginLoop(64, "scan");
        classify(scan.inductionVar, [&](Vreg idx, Vreg sign) {
            Vreg fits = b.cmpLt(R(count), K(16));
            b.beginIf(R(fits));
            {
                Vreg s8 = b.shl(R(sign), K(8));
                Vreg packed = b.bor(R(idx), R(s8));
                b.store(tmp, R(packed), R(count), Operand::none(), 5,
                        false);
                b.emitTo(count, Opcode::Add, R(count), K(1));
            }
            b.endIf();
        });
        b.endLoop();
        // Phase 2: pack the recorded codewords (predicated on j <
        // count so the loop shape stays static).
        auto &pack = b.beginLoop(16, "pack");
        {
            Vreg valid = b.cmpLt(R(pack.inductionVar), R(count));
            b.beginIf(R(valid));
            {
                Vreg packed = b.load(tmp, R(pack.inductionVar),
                                     Operand::none(), 5, false);
                Vreg idx = b.band(R(packed), K(0xff));
                Vreg sign = b.shr(R(packed), K(8));
                Vreg len = b.load(hlen, R(idx), Operand::none(), 3,
                                  false);
                Vreg code = b.load(hcode, R(idx), Operand::none(), 4,
                                   false);
                Vreg code1 = b.shl(R(code), K(1));
                Vreg code2 = b.bor(R(code1), R(sign));
                Vreg len2 = b.add(R(len), K(1));
                emitAppend(b, bits, st, R(code2), R(len2));
            }
            b.endIf();
        }
        b.endLoop();
    }

    // End-of-block code, then expose the residual coder state.
    emitAppend(b, bits, st, K(VbrCodeTable::kEobCode),
               K(VbrCodeTable::kEobBits));
    b.store(obits, R(st.bitbuf), K(0));
    b.store(obits, R(st.nbits), K(1));
    b.store(obits, R(st.wpos), K(2));
    return b.finish();
}

/** Golden coder state machine mirroring the IR bit-exactly. */
struct GoldenBitState
{
    uint16_t run = 0, bitbuf = 0, nbits = 0, wpos = 0;

    void
    append(MemoryImage &mem, int bits_buf, uint16_t code,
           uint16_t len)
    {
        uint16_t total = static_cast<uint16_t>(nbits + len);
        int16_t over = static_cast<int16_t>(total - 16);
        if (over >= 0) {
            uint16_t hi = static_cast<uint16_t>(len - over);
            uint16_t w = static_cast<uint16_t>(
                (bitbuf << (hi & 15)) | (code >> (over & 15)));
            mem.write(bits_buf, wpos, w);
            wpos++;
            uint16_t mask =
                static_cast<uint16_t>((1u << (over & 15)) - 1);
            bitbuf = static_cast<uint16_t>(code & mask);
            nbits = static_cast<uint16_t>(over);
        } else {
            bitbuf = static_cast<uint16_t>((bitbuf << (len & 15)) |
                                           code);
            nbits = total;
        }
    }
};

void
goldenVbrCommon(const Function &fn, MemoryImage &mem, bool phase_split)
{
    int coef = bufferIdByName(fn, "coef");
    int zig = bufferIdByName(fn, "zig");
    int hlen = bufferIdByName(fn, "hlen");
    int hcode = bufferIdByName(fn, "hcode");
    int bits = bufferIdByName(fn, "bits");
    int obits = bufferIdByName(fn, "obits");
    int tmp = phase_split ? bufferIdByName(fn, "tmp") : -1;

    GoldenBitState st;
    std::vector<std::pair<uint16_t, uint16_t>> pending;
    uint16_t count = 0;

    for (int k = 0; k < 64; ++k) {
        int zi = mem.read(zig, k);
        int16_t c = static_cast<int16_t>(mem.read(coef, zi));
        if (c == 0) {
            st.run++;
            continue;
        }
        uint16_t ac = static_cast<uint16_t>(c < 0 ? -c : c);
        uint16_t sign = c < 0 ? 1 : 0;
        uint16_t cls = std::min<uint16_t>(ac, 7);
        uint16_t ridx = std::min<uint16_t>(st.run, 15);
        uint16_t idx = static_cast<uint16_t>(ridx * 8 + cls);
        if (!phase_split) {
            uint16_t code2 = static_cast<uint16_t>(
                (mem.read(hcode, idx) << 1) | sign);
            uint16_t len2 =
                static_cast<uint16_t>(mem.read(hlen, idx) + 1);
            st.append(mem, bits, code2, len2);
        } else if (count < 16) {
            uint16_t packed =
                static_cast<uint16_t>(idx | (sign << 8));
            mem.write(tmp, count, packed);
            pending.emplace_back(idx, sign);
            count++;
        }
        st.run = 0;
    }
    if (phase_split) {
        for (const auto &[idx, sign] : pending) {
            uint16_t code2 = static_cast<uint16_t>(
                (mem.read(hcode, idx) << 1) | sign);
            uint16_t len2 =
                static_cast<uint16_t>(mem.read(hlen, idx) + 1);
            st.append(mem, bits, code2, len2);
        }
    }
    st.append(mem, bits, VbrCodeTable::kEobCode,
              VbrCodeTable::kEobBits);
    mem.write(obits, 0, st.bitbuf);
    mem.write(obits, 1, st.nbits);
    mem.write(obits, 2, st.wpos);
}

void
goldenVbr(const Function &fn, MemoryImage &mem)
{
    goldenVbrCommon(fn, mem, false);
}

void
goldenVbrPhase(const Function &fn, MemoryImage &mem)
{
    goldenVbrCommon(fn, mem, true);
}

// ---------------------------------------------------------------------
// Workload: quantized DCT coefficients of synthetic video.
// ---------------------------------------------------------------------

const std::vector<std::vector<uint16_t>> &
coefBlocksFor(const FrameGeometry &geom)
{
    // Shared across sweep workers; map nodes are stable, so the
    // reference stays valid after the lock is released.
    static std::map<std::pair<int, int>,
                    std::vector<std::vector<uint16_t>>>
        cache;
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(geom.width, geom.height);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    SyntheticVideo video(geom.width, geom.height, 31);
    Plane luma = video.lumaFrame(0);
    std::vector<std::vector<uint16_t>> blocks;
    int bw = geom.width / 8, bh = geom.height / 8;
    // Basis values tabulated once: the transcendental calls were the
    // dominant cost of first-use workload generation (a full CCIR-601
    // frame is ~44M cos() evaluations). Same doubles, same summation
    // order, so the quantized blocks are bit-identical to computing
    // cos() inline.
    std::array<std::array<double, 8>, 8> ct;
    for (int u = 0; u < 8; ++u) {
        for (int y = 0; y < 8; ++y) {
            ct[static_cast<size_t>(u)][static_cast<size_t>(y)] =
                std::cos((2 * y + 1) * u * M_PI / 16.0);
        }
    }
    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            // Reference float DCT + uniform quantizer: produces the
            // sparse blocks with characteristic zero runs.
            std::array<double, 64> d{};
            for (int u = 0; u < 8; ++u) {
                for (int v = 0; v < 8; ++v) {
                    double acc = 0;
                    for (int y = 0; y < 8; ++y) {
                        for (int x = 0; x < 8; ++x) {
                            double px =
                                luma.at(bx * 8 + x, by * 8 + y) - 128;
                            acc += px *
                                   ct[static_cast<size_t>(u)]
                                     [static_cast<size_t>(y)] *
                                   ct[static_cast<size_t>(v)]
                                     [static_cast<size_t>(x)];
                        }
                    }
                    double au = u == 0 ? std::sqrt(1.0 / 8) : 0.5;
                    double av = v == 0 ? std::sqrt(1.0 / 8) : 0.5;
                    d[static_cast<size_t>(u * 8 + v)] = au * av * acc;
                }
            }
            std::vector<uint16_t> raw(64);
            for (int i = 0; i < 64; ++i) {
                raw[static_cast<size_t>(i)] = static_cast<uint16_t>(
                    static_cast<int16_t>(std::lround(
                        d[static_cast<size_t>(i)])));
            }
            blocks.push_back(quantizeBlock(raw));
        }
    }
    cache.emplace(key, std::move(blocks));
    return cache.at(key);
}

void
prepareVbrUnit(const Function &fn, MemoryImage &mem,
               const FrameGeometry &geom, int index)
{
    const auto &blocks = coefBlocksFor(geom);
    const auto &block = blocks[static_cast<size_t>(index) %
                               blocks.size()];
    fillAllByName(fn, mem, "coef", block);

    std::vector<uint16_t> zig(64);
    for (int i = 0; i < 64; ++i)
        zig[static_cast<size_t>(i)] = zigzagOrder()[
            static_cast<size_t>(i)];
    fillAllByName(fn, mem, "zig", zig);

    const VbrCodeTable &table = VbrCodeTable::instance();
    std::vector<uint16_t> hlen(table.length.begin(),
                               table.length.end());
    std::vector<uint16_t> hcode(table.code.begin(), table.code.end());
    fillAllByName(fn, mem, "hlen", hlen);
    fillAllByName(fn, mem, "hcode", hcode);
}

} // anonymous namespace

KernelSpec
makeVbrKernel()
{
    KernelSpec k;
    k.name = "Variable-Bit-Rate Coder";
    k.unitsPerFrame = [](const FrameGeometry &g) {
        return static_cast<double>(g.codedBlocks());
    };
    k.outputBuffers = {"bits", "obits"};
    k.prepare = prepareVbrUnit;
    k.golden = goldenVbr;

    k.variants.push_back({"Sequential", ScheduleMode::Sequential,
                          false, 1, false, false,
                          [] { return buildVbr(false); },
                          [](Function &fn) {
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"Sequential-predicated",
                          ScheduleMode::Sequential, false, 1, false,
                          false, [] { return buildVbr(false); },
                          [](Function &fn) {
                              // Predicate only the small diamonds
                              // (the overflow path of an append); a
                              // width-1 schedule pays for every
                              // predicated op, so converting the big
                              // zero/nonzero branch would hurt.
                              passes::ifConvert(fn, 14);
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"List-scheduled", ScheduleMode::Wide, false,
                          1, true, false,
                          [] { return buildVbr(false); },
                          [](Function &fn) {
                              passes::unrollLoopByLabel(fn, "scan", 4);
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"List-scheduled-predicated",
                          ScheduleMode::Wide, false, 1, true, false,
                          [] { return buildVbr(false); },
                          [](Function &fn) {
                              // Full predication plus unrolling lets
                              // successive coefficients overlap up to
                              // the bit-buffer recurrence.
                              passes::ifConvert(fn);
                              passes::unrollLoopByLabel(fn, "scan", 4);
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"SW pipelined + comp. pred.",
                          ScheduleMode::Swp, false, 1, true, false,
                          [] { return buildVbr(false); },
                          [](Function &fn) {
                              passes::ifConvert(fn);
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          nullptr});
    k.variants.push_back({"+phase pipelining", ScheduleMode::Swp,
                          false, 1, true, false,
                          [] { return buildVbr(true); },
                          [](Function &fn) {
                              passes::ifConvert(fn);
                              passes::licm(fn);
                              passes::cleanup(fn);
                          },
                          goldenVbrPhase});
    return k;
}

} // namespace vvsp
