/**
 * @file
 * Kernel and variant descriptors.
 *
 * A kernel (one Table 1 section: Full Motion Search, Three-step
 * Search, the two DCTs, the color converter, the VBR coder) is a set
 * of *variants* - the paper's per-row "schedules". Each variant is a
 * machine-independent IR builder plus a transform recipe and a
 * scheduling strategy; machine-dependent lowering (multiply
 * decomposition, addressing modes, bank assignment) is applied per
 * datapath model by the experiment driver.
 *
 * One kernel invocation processes one *unit* (a macroblock for the
 * searches and the color converter, an 8x8 block for the DCTs and
 * the VBR coder); the composer scales unit cycles to a frame.
 */

#ifndef VVSP_KERNELS_KERNEL_HH
#define VVSP_KERNELS_KERNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "sim/memory_image.hh"
#include "support/random.hh"
#include "video/frame.hh"

namespace vvsp
{

/** How a variant's code is scheduled. */
enum class ScheduleMode
{
    Sequential, ///< one operation per instruction (baseline rows).
    Wide,       ///< list scheduling at full width.
    Swp,        ///< software pipelining of eligible innermost loops.
};

/** Fills a unit's input buffers (by buffer name) for unit `index`. */
using PrepareFn = std::function<void(const Function &fn, MemoryImage &mem,
                                     const FrameGeometry &geom,
                                     int index)>;

/** Computes expected output-buffer contents from the inputs. */
using GoldenFn = std::function<void(const Function &fn,
                                    MemoryImage &mem)>;

/** One Table 1 row. */
struct VariantSpec
{
    /** Row label, e.g. "SW pipelined & unrolled". */
    std::string name;
    ScheduleMode mode = ScheduleMode::Sequential;
    /** SIMD replication of units across clusters (do-all). */
    bool replicate = true;
    /** Gang this many clusters on one unit (Sec. 3.3 "widen"). */
    int gangClusters = 1;
    /** Gang every cluster in the machine (VBR list scheduling). */
    bool gangAllClusters = false;
    /** Requires the absolute-difference ALU ("Add spec. op" rows). */
    bool needsAbsDiff = false;
    /** Build the variant's IR (machine independent). */
    std::function<Function()> build;
    /** Machine-independent transform recipe (unroll, ifcvt, ...). */
    std::function<void(Function &)> transform;
    /** Variant-specific expected output (default: kernel golden). */
    GoldenFn goldenOverride;
};

/** One Table 1 section. */
struct KernelSpec
{
    std::string name;
    /** Kernel invocations per frame of the given geometry. */
    std::function<double(const FrameGeometry &)> unitsPerFrame;
    /** Buffers compared against the golden reference, by name. */
    std::vector<std::string> outputBuffers;
    PrepareFn prepare;
    GoldenFn golden;
    std::vector<VariantSpec> variants;

    const VariantSpec &variant(const std::string &name) const;
};

/** All six kernels, in Table 1 order. */
const std::vector<KernelSpec> &allKernels();

/** Look up a kernel by name. */
const KernelSpec &kernelByName(const std::string &name);

// Individual kernel factories (see the per-kernel .cc files).
KernelSpec makeFullSearchKernel();
KernelSpec makeThreeStepKernel();
KernelSpec makeDctTraditionalKernel();
KernelSpec makeDctRowColKernel();
KernelSpec makeColorConvertKernel();
KernelSpec makeVbrKernel();

/** Find a buffer id by name (first match; panics if absent). */
int bufferIdByName(const Function &fn, const std::string &name);

/**
 * Fill every buffer with the given name (replicated read-only
 * buffers share their original's name and contents).
 */
void fillAllByName(const Function &fn, MemoryImage &mem,
                   const std::string &name,
                   const std::vector<uint16_t> &data);

} // namespace vvsp

#endif // VVSP_KERNELS_KERNEL_HH
