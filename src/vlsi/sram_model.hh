/**
 * @file
 * Analytic delay/area models of the local data SRAM
 * (paper Sec. 3.1.3, Fig 4).
 *
 * Two cell designs are modeled, as in the paper:
 *
 *  - HighPerformance: the scaleable 1..5-ported design of Fig 4,
 *    optimized for speed with many ports; density ~400 B/mm^2 at
 *    4 ports. The minimum cell transistor grows with the port count,
 *    so delay degrades slightly less than naively expected while area
 *    grows somewhat more.
 *  - HighDensity: the specially designed 1- and 2-ported cells with
 *    ~2600 and ~2200 B/mm^2 marginal density, ~17% slower than the
 *    high-performance cell. A "fast" speed-binned variant (larger
 *    cell) is used for the single 16 KB memory of I2C16S5.
 *
 * Large memories are composed from fixed-size modules (the paper's
 * 32 KB cluster memory uses 16Kx1-bit modules); the access delay of
 * the composed memory is the module delay plus a bank-select mux.
 */

#ifndef VVSP_VLSI_SRAM_MODEL_HH
#define VVSP_VLSI_SRAM_MODEL_HH

#include <vector>

#include "vlsi/technology.hh"

namespace vvsp
{

/** SRAM cell design choice. */
enum class SramDesign
{
    HighPerformance, ///< Fig 4 multiported design (1..5 ports).
    HighDensity,     ///< dense 1-2 ported design (Sec. 3.1.3).
    HighDensityFast, ///< speed-binned dense cell (I2C16S5's 16 KB).
};

/** Parameterized local-memory megacell (Fig 4). */
class SramModel
{
  public:
    explicit SramModel(const Technology &tech = Technology::um025());

    /** Port counts swept in Fig 4. */
    static const std::vector<int> &standardPorts();

    /** Capacities (bytes) swept in Fig 4: 2 .. 32768, x4 steps. */
    static const std::vector<int> &standardSizes();

    /** Access delay in ns of a monolithic array. */
    double delayNs(int bytes, int ports,
                   SramDesign design = SramDesign::HighPerformance) const;

    /** Area in mm^2 of a monolithic array. */
    double areaMm2(int bytes, int ports,
                   SramDesign design = SramDesign::HighPerformance) const;

    /**
     * Access delay of a memory of totalBytes composed from modules of
     * moduleBytes each (bank-select mux included).
     */
    double composedDelayNs(int totalBytes, int moduleBytes, int ports,
                           SramDesign design) const;

    /** Area of a composed memory (modules plus shared periphery). */
    double composedAreaMm2(int totalBytes, int moduleBytes, int ports,
                           SramDesign design) const;

    /** Marginal storage density in bytes per mm^2 (cell only). */
    double densityBytesPerMm2(int ports, SramDesign design) const;

  private:
    double cellArea(int ports, SramDesign design) const;

    const Technology &tech_;
};

} // namespace vvsp

#endif // VVSP_VLSI_SRAM_MODEL_HH
