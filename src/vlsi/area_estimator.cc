#include "vlsi/area_estimator.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/table.hh"

namespace vvsp
{

AreaEstimator::AreaEstimator(const Technology &tech)
    : tech_(tech), xbar_(tech), rf_(tech), sram_(tech), fu_(tech)
{
}

AreaBreakdown
AreaEstimator::estimate(const DatapathConfig &cfg) const
{
    cfg.validate();
    const ClusterConfig &cl = cfg.cluster;
    AreaBreakdown b;

    b.registerFile = rf_.areaMm2(cl.registers, cl.regFilePorts);

    b.alus = cl.numAlus * fu_.aluAreaMm2(false);
    if (cl.hasAbsDiff)
        b.alus += tech_.absDiffExtraArea; // one ALU doubles in area.

    double mult = cfg.multiplier == MultiplierKind::Mul16x16Pipelined
                      ? fu_.mult16AreaMm2()
                      : fu_.mult8AreaMm2();
    b.multipliers = cl.numMultipliers * mult;
    b.shifters = cl.numShifters * fu_.shifterAreaMm2();

    SramDesign design = cl.fastMemoryCell ? SramDesign::HighDensityFast
                                          : SramDesign::HighDensity;
    int bank_bytes = cl.localMemBytes / cl.memBanks;
    b.localRam = cl.memBanks *
                 sram_.composedAreaMm2(bank_bytes, cl.memModuleBytes,
                                       cl.memPortsPerBank, design);

    b.bypass = tech_.bypassAreaPerSlot * cl.issueSlots;
    if (cfg.pipelineStages >= 5) {
        // One extra bypass path per issue slot for the MEM stage.
        b.bypass += tech_.bypassAreaPerExtraPath * cl.issueSlots;
    }

    double raw = b.registerFile + b.alus + b.multipliers + b.shifters +
                 b.localRam + b.bypass;
    b.localRouting = raw * (tech_.localRoutingFactor - 1.0);
    b.clusterTotal = raw + b.localRouting;

    b.crossbar = xbar_.routedAreaMm2(cfg.crossbarPorts(),
                                     cfg.crossbarDriverUm);
    b.datapathTotal = cfg.clusters * b.clusterTotal + b.crossbar;
    return b;
}

double
AreaEstimator::datapathMm2(const DatapathConfig &cfg) const
{
    return estimate(cfg).datapathTotal;
}

double
AreaEstimator::powerWatts(const DatapathConfig &cfg, double clockGhz) const
{
    vvsp_assert(clockGhz > 0.0, "bad clock");
    double area = datapathMm2(cfg);
    double v = tech_.supplyVolts;
    // P = alpha * C * V^2 * f; C in nF, f in GHz -> watts.
    return tech_.activityFactor * tech_.switchedCapPerMm2 * area * v * v *
           clockGhz;
}

double
AreaEstimator::chipPowerWatts(const DatapathConfig &cfg,
                              double clockGhz) const
{
    return powerWatts(cfg, clockGhz) * tech_.chipPowerFactor;
}

std::string
AreaBreakdown::str(const DatapathConfig &cfg) const
{
    const ClusterConfig &cl = cfg.cluster;
    TextTable t;
    auto mm2 = [](double v) { return TextTable::num(v, 2) + " mm^2"; };
    t.row({format("%d-ported register file - %d registers",
                  cl.regFilePorts, cl.registers),
           mm2(registerFile)});
    t.row({format("%d ALUs%s", cl.numAlus,
                  cl.hasAbsDiff ? " (one with abs-diff)" : ""),
           mm2(alus)});
    t.row({cfg.multiplier == MultiplierKind::Mul16x16Pipelined
               ? "16-bit 2-stage multiplier"
               : "8-bit multiplier",
           mm2(multipliers)});
    t.row({"shifter", mm2(shifters)});
    t.row({format("%dK local RAM (%d bank%s)",
                  cl.localMemBytes / 1024, cl.memBanks,
                  cl.memBanks > 1 ? "s" : ""),
           mm2(localRam)});
    t.row({"Bypass logic, pipeline registers, etc.", mm2(bypass)});
    t.row({"Local routing overhead", mm2(localRouting)});
    t.separator();
    t.row({"Cluster area", mm2(clusterTotal)});
    t.row({format("%dx%d crossbar (routed)", cfg.crossbarPorts(),
                  cfg.crossbarPorts()),
           mm2(crossbar)});
    t.row({format("%d clusters + crossbar datapath", cfg.clusters),
           mm2(datapathTotal)});
    return t.str();
}

} // namespace vvsp
