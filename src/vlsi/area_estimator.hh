/**
 * @file
 * Datapath area composition (paper Fig 5 and the "Estimated Area"
 * rows of Tables 1-2).
 *
 * A cluster's area is the sum of its register file, functional units,
 * local RAM, and bypass/pipeline-register logic, plus 10% local
 * routing overhead (2-3 upper metal layers are available for routing
 * over the subcomponents). The datapath is the clusters plus the
 * routed central crossbar.
 */

#ifndef VVSP_VLSI_AREA_ESTIMATOR_HH
#define VVSP_VLSI_AREA_ESTIMATOR_HH

#include <string>

#include "arch/datapath_config.hh"
#include "vlsi/crossbar_model.hh"
#include "vlsi/fu_model.hh"
#include "vlsi/regfile_model.hh"
#include "vlsi/sram_model.hh"
#include "vlsi/technology.hh"

namespace vvsp
{

/** Per-cluster and total area breakdown of a datapath (Fig 5). */
struct AreaBreakdown
{
    double registerFile = 0.0;  ///< multiported local register file.
    double alus = 0.0;          ///< all ALUs (incl. abs-diff ALU).
    double multipliers = 0.0;   ///< multiplier(s).
    double shifters = 0.0;      ///< shifter(s).
    double localRam = 0.0;      ///< all local data RAM banks.
    double bypass = 0.0;        ///< bypass logic + pipeline registers.
    double localRouting = 0.0;  ///< 10% intra-cluster routing.
    double clusterTotal = 0.0;  ///< one cluster, routed.
    double crossbar = 0.0;      ///< central switch incl. routing.
    double datapathTotal = 0.0; ///< clusters + crossbar.

    /** Render as a Fig 5-style table. */
    std::string str(const DatapathConfig &cfg) const;
};

/** Composes megacell areas into cluster and datapath totals. */
class AreaEstimator
{
  public:
    explicit AreaEstimator(const Technology &tech = Technology::um025());

    /** Full breakdown for a datapath configuration. */
    AreaBreakdown estimate(const DatapathConfig &cfg) const;

    /** Convenience: total datapath area in mm^2. */
    double datapathMm2(const DatapathConfig &cfg) const;

    /**
     * Estimated datapath power in watts at the given clock (Sec. 3:
     * "the 50 W range"). C*V^2*f with an average activity factor.
     */
    double powerWatts(const DatapathConfig &cfg, double clockGhz) const;

    /**
     * Whole-chip power estimate (adds instruction cache, control, and
     * clock distribution on top of the datapath).
     */
    double chipPowerWatts(const DatapathConfig &cfg,
                          double clockGhz) const;

  private:
    const Technology &tech_;
    CrossbarModel xbar_;
    RegisterFileModel rf_;
    SramModel sram_;
    FunctionalUnitModel fu_;
};

} // namespace vvsp

#endif // VVSP_VLSI_AREA_ESTIMATOR_HH
