#include "vlsi/crossbar_model.hh"

#include "support/logging.hh"

namespace vvsp
{

CrossbarModel::CrossbarModel(const Technology &tech)
    : tech_(tech)
{
}

const std::vector<double> &
CrossbarModel::standardDriversUm()
{
    static const std::vector<double> drivers{1.8, 2.7, 3.9, 4.5, 5.1};
    return drivers;
}

const std::vector<int> &
CrossbarModel::standardPorts()
{
    static const std::vector<int> ports{4, 8, 16, 32, 64};
    return ports;
}

double
CrossbarModel::delayNs(int ports, double driverUm) const
{
    vvsp_assert(ports >= 2, "crossbar needs >= 2 ports, got %d", ports);
    vvsp_assert(driverUm > 0.0, "bad driver width");
    return tech_.xbarBaseDelay +
           tech_.xbarDriveCoeff * ports / driverUm +
           tech_.xbarWireCoeff * ports * ports;
}

double
CrossbarModel::areaMm2(int ports, double driverUm) const
{
    vvsp_assert(ports >= 2, "crossbar needs >= 2 ports, got %d", ports);
    return tech_.xbarCellArea * ports * ports +
           tech_.xbarDriverArea * ports * driverUm;
}

double
CrossbarModel::routedAreaMm2(int ports, double driverUm) const
{
    return areaMm2(ports, driverUm) * tech_.xbarRoutingFactor;
}

double
CrossbarModel::minDriverForCycle(int ports, double cycleNs) const
{
    for (double w : standardDriversUm()) {
        if (delayNs(ports, w) <= cycleNs)
            return w;
    }
    return -1.0;
}

} // namespace vvsp
