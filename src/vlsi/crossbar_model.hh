/**
 * @file
 * Analytic delay/area model of the full 16-bit crossbar switch
 * (paper Sec. 3.1.1, Fig 2; detailed circuit design in [10]).
 *
 * The crossbar is an N x N switch of 16-bit ports with inputs and
 * outputs routed in from both sides. Delay is modeled as a fixed
 * decode/sense term, a driver-limited charging term proportional to
 * the port count divided by the driver width, and a distributed-RC
 * wire term proportional to the square of the port count. Area is a
 * switch matrix growing with ports^2 plus a driver column.
 */

#ifndef VVSP_VLSI_CROSSBAR_MODEL_HH
#define VVSP_VLSI_CROSSBAR_MODEL_HH

#include <vector>

#include "vlsi/technology.hh"

namespace vvsp
{

/** Parameterized 16-bit crossbar megacell (Fig 2). */
class CrossbarModel
{
  public:
    explicit CrossbarModel(const Technology &tech = Technology::um025());

    /** Driver widths (um) swept in Fig 2. */
    static const std::vector<double> &standardDriversUm();

    /** Port counts swept in Fig 2. */
    static const std::vector<int> &standardPorts();

    /** Propagation delay in ns through an N-port switch. */
    double delayNs(int ports, double driverUm) const;

    /** Silicon area in mm^2 of an N-port switch. */
    double areaMm2(int ports, double driverUm) const;

    /**
     * Area including the routing needed to connect the switch to the
     * surrounding functional-unit clusters (used when composing a
     * datapath; Sec. 3.2).
     */
    double routedAreaMm2(int ports, double driverUm) const;

    /**
     * Smallest standard driver that meets the given cycle time, or a
     * negative value if none does.
     */
    double minDriverForCycle(int ports, double cycleNs) const;

  private:
    const Technology &tech_;
};

} // namespace vvsp

#endif // VVSP_VLSI_CROSSBAR_MODEL_HH
