#include "vlsi/technology.hh"

namespace vvsp
{

const Technology &
Technology::um025()
{
    static const Technology tech{};
    return tech;
}

} // namespace vvsp
