/**
 * @file
 * Process-technology constants for the 0.25 um VLSI models.
 *
 * The paper characterized its megacells (crossbar, register file, SRAM)
 * with transistor-level ADVICE simulations of layouts in an experimental
 * 0.25 um process at 3.0 V. We replace the circuit simulator with
 * analytic RC-style delay models and cell-composition area models whose
 * coefficients are calibrated so that every data point the paper
 * publishes is reproduced:
 *
 *  - Fig 2 crossbar curves (sub-1ns at 16 ports, ~1.5ns at 32,
 *    ~3ns at 64 for the largest drivers; area 0.1..100 mm^2),
 *  - Fig 3 register-file curves (delay only slightly port-dependent,
 *    12-port 128-entry file = 3.0 mm^2 per Fig 5),
 *  - Fig 4 SRAM curves (~400 B/mm^2 4-ported, ~2600 B/mm^2 marginal
 *    density for the high-density single-ported design, 32 KB =
 *    12.9 mm^2 per Fig 5),
 *  - the Table 1 / Table 2 area and relative-clock header rows.
 *
 * All delays are in nanoseconds and all areas in mm^2.
 */

#ifndef VVSP_VLSI_TECHNOLOGY_HH
#define VVSP_VLSI_TECHNOLOGY_HH

namespace vvsp
{

/**
 * Calibration constants for the 0.25 um process models. A different
 * instance retargets the whole library to another process node.
 */
struct Technology
{
    /** Drawn feature size in um (documentation only). */
    double featureUm = 0.25;
    /** Supply voltage in V (documentation only). */
    double supplyVolts = 3.0;

    // ---- Crossbar (Fig 2) ------------------------------------------
    /** Fixed decode + sense overhead of the switch (ns). */
    double xbarBaseDelay = 0.636;
    /** Driver-limited charging term: multiplies ports/driverUm (ns um). */
    double xbarDriveCoeff = 0.0868;
    /** Distributed wire RC term: multiplies ports^2 (ns). */
    double xbarWireCoeff = 0.000311;
    /** Switch-matrix area per port^2 (mm^2). */
    double xbarCellArea = 0.008;
    /** Driver column area per port per um of driver width (mm^2). */
    double xbarDriverArea = 0.004;
    /**
     * Overhead factor for routing the crossbar to the surrounding
     * clusters when composing a datapath (Sec. 3.2).
     */
    double xbarRoutingFactor = 1.28;

    // ---- Local register file (Fig 3) -------------------------------
    /** Access-path base delay (ns). */
    double rfBaseDelay = 0.10;
    /** Word/bit-line delay per log2(registers) (ns). */
    double rfDepthDelay = 0.121;
    /** Fractional delay growth per port (loading of the cell). */
    double rfPortDelayFactor = 0.02;
    /** Storage-cell area per bit per (ports + 1.5)^2 (mm^2). */
    double rfCellArea = 6.5e-6;
    /** Decoder/driver periphery area per port (mm^2). */
    double rfPeriPerPort = 0.04;
    /** Fixed periphery area (mm^2). */
    double rfPeriBase = 0.10;

    // ---- Local data SRAM (Fig 4) ------------------------------------
    /** Sense/decode base delay (ns). */
    double sramBaseDelay = 0.35;
    /** Extra decode delay per port (ns). */
    double sramPortDelay = 0.04;
    /** Bit-line RC delay per sqrt(bytes) (ns). */
    double sramBitlineCoeff = 0.0159;
    /** Fractional bit-line slowdown per port beyond the first. */
    double sramPortLoadFactor = 0.08;
    /** High-performance multiported cell area per byte per (p+1.2)^2. */
    double sramHpCellArea = 9.25e-5;
    /** High-perf periphery: fixed + per-port (mm^2). */
    double sramHpPeriBase = 0.10;
    double sramHpPeriPerPort = 0.08;
    /** High-density 1-port cell area per byte (mm^2); ~2600 B/mm^2. */
    double sramHd1pCellArea = 3.853e-4;
    /** High-density 2-port cell area per byte (mm^2); ~2200 B/mm^2. */
    double sramHd2pCellArea = 4.55e-4;
    /** High-density periphery (mm^2). */
    double sramHdPeri = 0.273;
    /** Delay penalty of the density-optimized cell vs high-perf. */
    double sramHdDelayFactor = 1.17;
    /**
     * Cell-area growth for the speed-binned cell used by the single
     * 16 KB memory of I2C16S5 (Sec. 3.2: "increased the cell size").
     */
    double sramFastCellFactor = 1.365;
    /** Bank-select mux delay added to a module access (ns). */
    double sramBankMuxDelay = 0.04;

    // ---- Functional units (Sec. 3.1.4, published designs) ----------
    /** 16-bit ALU delay (ns); scaled from the 1.5ns 32-bit ALU [9]. */
    double aluDelay = 0.80;
    /** 16-bit ALU area (mm^2); Fig 5 uses 0.4 per ALU. */
    double aluArea = 0.40;
    /** Extra delay of the absolute-difference ALU (~2 gate delays). */
    double absDiffExtraDelay = 0.10;
    /** The abs-diff ALU doubles in area (Sec. 3.3). */
    double absDiffExtraArea = 0.40;
    /** 8x8 multiplier: single cycle at target rates (Fig 5: 1 mm^2). */
    double mult8Area = 1.0;
    double mult8Delay = 1.3;
    /**
     * 16x16 two-stage multiplier ("under 3 mm^2", Table 2 deltas).
     * Per-stage delay fits the 16-cluster cycle time: the 4.4ns
     * 54x54 pass-transistor design [8] scales well below 1ns per
     * stage at 16 bits.
     */
    double mult16Area = 2.8;
    double mult16StageDelay = 0.92;
    /** Barrel shifter (Fig 5: 0.5 mm^2). */
    double shifterArea = 0.5;
    double shifterDelay = 0.45;

    // ---- Bypass / pipeline overhead ---------------------------------
    /** Bypass multiplexer delay per input (ns). */
    double bypassMuxDelayPerInput = 0.025;
    /** Bypass + pipeline register area per issue slot (mm^2). */
    double bypassAreaPerSlot = 0.10;
    /** Additional bypass area per extra 5-stage bypass path (mm^2). */
    double bypassAreaPerExtraPath = 0.06;
    /** Mux/alignment overhead when folding an address add into the
     *  memory stage (the I4C8S4C combined stage), ns. */
    double agenFoldOverhead = 0.22;
    /** Clock skew + latch setup overhead per stage (ns). */
    double clockOverhead = 0.22;
    /**
     * The paper *assumes* complex 5-stage bypassing in 4-slot clusters
     * costs ~5% of cycle time (Sec. 3.2); same assumption here.
     */
    double fiveStageBypassPenalty = 1.05;

    /** Local (intra-cluster) routing overhead factor (Fig 5: 10%). */
    double localRoutingFactor = 1.10;

    // ---- Power (Sec. 3, "in the 50 W range") ------------------------
    /** Switched capacitance per mm^2 of active datapath logic (nF). */
    double switchedCapPerMm2 = 0.055;
    /** Average activity factor of datapath logic. */
    double activityFactor = 0.35;
    /**
     * Whole-chip power relative to the datapath alone (instruction
     * cache, control, I/O, and the clock-distribution network).
     */
    double chipPowerFactor = 2.4;

    /** The experimental 0.25 um process used throughout the paper. */
    static const Technology &um025();
};

} // namespace vvsp

#endif // VVSP_VLSI_TECHNOLOGY_HH
