/**
 * @file
 * Delay/area figures for the arithmetic units (paper Sec. 3.1.4).
 *
 * The paper bases these on published 0.25 um designs rather than
 * custom layout: a 1.5ns 32-bit double-pass-transistor ALU [9]
 * (0.6 mm^2) and a 4.4ns 54x54 multiplier [8] (12.8 mm^2), scaled to
 * the 16-bit datapath. Fig 5 uses 0.4 mm^2 per 16-bit ALU, 1 mm^2 for
 * the 8x8 multiplier, and 0.5 mm^2 for the shifter.
 */

#ifndef VVSP_VLSI_FU_MODEL_HH
#define VVSP_VLSI_FU_MODEL_HH

#include "vlsi/technology.hh"

namespace vvsp
{

/** Arithmetic-unit area/delay figures from published designs. */
class FunctionalUnitModel
{
  public:
    explicit FunctionalUnitModel(const Technology &tech =
                                     Technology::um025());

    /** 16-bit ALU delay (ns); absDiff adds ~2 gate delays. */
    double aluDelayNs(bool absDiff = false) const;

    /** 16-bit ALU area (mm^2); the abs-diff ALU doubles in area. */
    double aluAreaMm2(bool absDiff = false) const;

    /** 8x8 multiplier (single cycle at the 650 MHz target). */
    double mult8DelayNs() const;
    double mult8AreaMm2() const;

    /** 16x16 two-stage pipelined multiplier (per-stage delay). */
    double mult16StageDelayNs() const;
    double mult16AreaMm2() const;

    /** Barrel shifter. */
    double shifterDelayNs() const;
    double shifterAreaMm2() const;

    /** Bypass-network multiplexer delay for the given input count. */
    double bypassMuxDelayNs(int inputs) const;

  private:
    const Technology &tech_;
};

} // namespace vvsp

#endif // VVSP_VLSI_FU_MODEL_HH
