/**
 * @file
 * Analytic delay/area model of the multiported 16-bit local register
 * file (paper Sec. 3.1.2, Fig 3).
 *
 * Delay grows with the depth of the file (word/bit-line length,
 * log2(registers)) and only slightly with the port count, matching the
 * paper's observation. Area is dominated by the storage cell, which
 * grows quadratically with the port count because each port adds a
 * word line and a bit line to the cell pitch in both dimensions.
 */

#ifndef VVSP_VLSI_REGFILE_MODEL_HH
#define VVSP_VLSI_REGFILE_MODEL_HH

#include <vector>

#include "vlsi/technology.hh"

namespace vvsp
{

/** Parameterized multiported register-file megacell (Fig 3). */
class RegisterFileModel
{
  public:
    explicit RegisterFileModel(const Technology &tech =
                                   Technology::um025());

    /** Port counts swept in Fig 3 (3 ports per issue slot). */
    static const std::vector<int> &standardPorts();

    /** Register counts swept in Fig 3. */
    static const std::vector<int> &standardSizes();

    /** Read-access delay in ns of a file with the given geometry. */
    double delayNs(int registers, int ports) const;

    /** Area in mm^2 of 16-bit registers with the given geometry. */
    double areaMm2(int registers, int ports) const;

    /**
     * Largest power-of-two register count whose access fits in the
     * given stage delay budget (ns), or 0 if even 16 does not fit.
     */
    int maxRegistersForDelay(int ports, double budgetNs) const;

  private:
    const Technology &tech_;
};

} // namespace vvsp

#endif // VVSP_VLSI_REGFILE_MODEL_HH
