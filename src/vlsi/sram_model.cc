#include "vlsi/sram_model.hh"

#include <cmath>

#include "support/logging.hh"

namespace vvsp
{

SramModel::SramModel(const Technology &tech)
    : tech_(tech)
{
}

const std::vector<int> &
SramModel::standardPorts()
{
    static const std::vector<int> ports{1, 2, 3, 4, 5};
    return ports;
}

const std::vector<int> &
SramModel::standardSizes()
{
    static const std::vector<int> sizes{2,    8,    32,   128,
                                        512,  2048, 8192, 32768};
    return sizes;
}

double
SramModel::delayNs(int bytes, int ports, SramDesign design) const
{
    vvsp_assert(bytes >= 2, "SRAM too small: %d bytes", bytes);
    vvsp_assert(ports >= 1, "SRAM needs ports");
    if (design != SramDesign::HighPerformance) {
        vvsp_assert(ports <= 2,
                    "high-density cells support at most 2 ports, got %d",
                    ports);
    }
    double bitline = tech_.sramBitlineCoeff *
                     std::sqrt(static_cast<double>(bytes)) *
                     (1.0 + tech_.sramPortLoadFactor * (ports - 1));
    double d = tech_.sramBaseDelay + tech_.sramPortDelay * ports + bitline;
    if (design != SramDesign::HighPerformance)
        d *= tech_.sramHdDelayFactor;
    // The speed-binned dense cell recovers the high-perf speed.
    if (design == SramDesign::HighDensityFast)
        d /= tech_.sramHdDelayFactor;
    return d;
}

double
SramModel::cellArea(int ports, SramDesign design) const
{
    switch (design) {
      case SramDesign::HighPerformance: {
        double p = ports + 1.2;
        return tech_.sramHpCellArea * p * p;
      }
      case SramDesign::HighDensity:
        return ports <= 1 ? tech_.sramHd1pCellArea
                          : tech_.sramHd2pCellArea;
      case SramDesign::HighDensityFast:
        return (ports <= 1 ? tech_.sramHd1pCellArea
                           : tech_.sramHd2pCellArea) *
               tech_.sramFastCellFactor;
    }
    vvsp_panic("unknown SRAM design");
}

double
SramModel::areaMm2(int bytes, int ports, SramDesign design) const
{
    vvsp_assert(bytes >= 2 && ports >= 1, "bad SRAM shape");
    if (design != SramDesign::HighPerformance) {
        vvsp_assert(ports <= 2,
                    "high-density cells support at most 2 ports, got %d",
                    ports);
    }
    double peri = design == SramDesign::HighPerformance
                      ? tech_.sramHpPeriBase + tech_.sramHpPeriPerPort *
                                                   ports
                      : tech_.sramHdPeri;
    return peri + bytes * cellArea(ports, design);
}

double
SramModel::composedDelayNs(int totalBytes, int moduleBytes, int ports,
                           SramDesign design) const
{
    vvsp_assert(totalBytes >= moduleBytes,
                "memory (%d B) smaller than its module (%d B)",
                totalBytes, moduleBytes);
    return delayNs(moduleBytes, ports, design) + tech_.sramBankMuxDelay;
}

double
SramModel::composedAreaMm2(int totalBytes, int moduleBytes, int ports,
                           SramDesign design) const
{
    vvsp_assert(totalBytes >= moduleBytes,
                "memory (%d B) smaller than its module (%d B)",
                totalBytes, moduleBytes);
    // Module composition shares decode periphery; the dominant cost is
    // cell area, so the composed array is modeled as one array of the
    // total capacity (module boundaries cost negligible area in the
    // two spare metal layers).
    return areaMm2(totalBytes, ports, design);
}

double
SramModel::densityBytesPerMm2(int ports, SramDesign design) const
{
    return 1.0 / cellArea(ports, design);
}

} // namespace vvsp
