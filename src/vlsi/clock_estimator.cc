#include "vlsi/clock_estimator.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"

namespace vvsp
{

ClockEstimator::ClockEstimator(const Technology &tech)
    : tech_(tech), xbar_(tech), rf_(tech), sram_(tech), fu_(tech)
{
}

int
ClockEstimator::bypassInputs(const DatapathConfig &cfg)
{
    const ClusterConfig &cl = cfg.cluster;
    int fus = cl.numAlus + cl.numMultipliers + cl.numShifters +
              cl.numLoadStoreUnits;
    // Wide clusters bypass the register read, writeback, and
    // crossbar-in paths as well (the paper's 10-input muxes on
    // I4C8S4); 2-slot clusters share a single crossbar port and
    // write port, needing only the register-read path.
    int inputs = fus + (cl.issueSlots >= 4 ? 3 : 1);
    if (cfg.pipelineStages >= 5 && cl.issueSlots >= 4) {
        // One extra MEM-stage bypass path per issue slot.
        inputs += cl.issueSlots;
    }
    return inputs;
}

ClockBreakdown
ClockEstimator::estimate(const DatapathConfig &cfg) const
{
    cfg.validate();
    const ClusterConfig &cl = cfg.cluster;
    ClockBreakdown b;

    b.regFileNs = rf_.delayNs(cl.registers, cl.regFilePorts);

    double mux = fu_.bypassMuxDelayNs(bypassInputs(cfg));
    b.executeNs = fu_.aluDelayNs(cl.hasAbsDiff) + mux;
    b.executeNs = std::max(b.executeNs, fu_.shifterDelayNs() + mux);

    SramDesign design = cl.fastMemoryCell ? SramDesign::HighDensityFast
                                          : SramDesign::HighDensity;
    int bank_bytes = cl.localMemBytes / cl.memBanks;
    b.memoryNs = sram_.composedDelayNs(bank_bytes, cl.memModuleBytes,
                                       cl.memPortsPerBank, design);
    if (cfg.addressing == AddressingModes::Complex &&
        cfg.pipelineStages == 4) {
        // I4C8S4C: address addition and memory access share a stage.
        b.memoryNs += fu_.aluDelayNs(false) + tech_.agenFoldOverhead;
    }

    b.multiplyNs = cfg.multiplier == MultiplierKind::Mul16x16Pipelined
                       ? fu_.mult16StageDelayNs()
                       : fu_.mult8DelayNs() / cfg.multiplyStages;

    b.crossbarNs = xbar_.delayNs(cfg.crossbarPorts(),
                                 cfg.crossbarDriverUm);

    double stage = std::max({b.regFileNs, b.executeNs, b.memoryNs,
                             b.multiplyNs});
    b.cycleNs = std::max(stage + tech_.clockOverhead, b.crossbarNs);
    if (cfg.pipelineStages >= 5 && cl.issueSlots >= 4)
        b.cycleNs *= tech_.fiveStageBypassPenalty;
    b.clockMhz = 1000.0 / b.cycleNs;
    return b;
}

double
ClockEstimator::clockMhz(const DatapathConfig &cfg) const
{
    return estimate(cfg).clockMhz;
}

double
ClockEstimator::relativeClock(const DatapathConfig &cfg,
                              const DatapathConfig &reference) const
{
    return clockMhz(cfg) / clockMhz(reference);
}

std::string
ClockBreakdown::str() const
{
    std::ostringstream os;
    os << "regfile " << regFileNs << " ns, execute " << executeNs
       << " ns, memory " << memoryNs << " ns, multiply " << multiplyNs
       << " ns, crossbar " << crossbarNs << " ns -> cycle " << cycleNs
       << " ns (" << clockMhz << " MHz)";
    return os.str();
}

} // namespace vvsp
