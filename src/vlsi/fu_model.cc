#include "vlsi/fu_model.hh"

#include "support/logging.hh"

namespace vvsp
{

FunctionalUnitModel::FunctionalUnitModel(const Technology &tech)
    : tech_(tech)
{
}

double
FunctionalUnitModel::aluDelayNs(bool absDiff) const
{
    return tech_.aluDelay + (absDiff ? tech_.absDiffExtraDelay : 0.0);
}

double
FunctionalUnitModel::aluAreaMm2(bool absDiff) const
{
    return tech_.aluArea + (absDiff ? tech_.absDiffExtraArea : 0.0);
}

double
FunctionalUnitModel::mult8DelayNs() const
{
    return tech_.mult8Delay;
}

double
FunctionalUnitModel::mult8AreaMm2() const
{
    return tech_.mult8Area;
}

double
FunctionalUnitModel::mult16StageDelayNs() const
{
    return tech_.mult16StageDelay;
}

double
FunctionalUnitModel::mult16AreaMm2() const
{
    return tech_.mult16Area;
}

double
FunctionalUnitModel::shifterDelayNs() const
{
    return tech_.shifterDelay;
}

double
FunctionalUnitModel::shifterAreaMm2() const
{
    return tech_.shifterArea;
}

double
FunctionalUnitModel::bypassMuxDelayNs(int inputs) const
{
    vvsp_assert(inputs >= 1, "bypass mux needs inputs");
    return tech_.bypassMuxDelayPerInput * inputs;
}

} // namespace vvsp
