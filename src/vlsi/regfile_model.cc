#include "vlsi/regfile_model.hh"

#include <cmath>

#include "support/logging.hh"

namespace vvsp
{

RegisterFileModel::RegisterFileModel(const Technology &tech)
    : tech_(tech)
{
}

const std::vector<int> &
RegisterFileModel::standardPorts()
{
    static const std::vector<int> ports{3, 6, 9, 12};
    return ports;
}

const std::vector<int> &
RegisterFileModel::standardSizes()
{
    static const std::vector<int> sizes{16, 64, 256};
    return sizes;
}

double
RegisterFileModel::delayNs(int registers, int ports) const
{
    vvsp_assert(registers >= 2, "register file too small: %d", registers);
    vvsp_assert(ports >= 1, "register file needs ports");
    double depth = std::log2(static_cast<double>(registers));
    return tech_.rfBaseDelay +
           tech_.rfDepthDelay * depth *
               (1.0 + tech_.rfPortDelayFactor * ports);
}

double
RegisterFileModel::areaMm2(int registers, int ports) const
{
    vvsp_assert(registers >= 2 && ports >= 1, "bad register file shape");
    double pitch = ports + 1.5;
    double cell = tech_.rfCellArea * pitch * pitch;
    double bits = 16.0 * registers;
    return bits * cell + tech_.rfPeriBase + tech_.rfPeriPerPort * ports;
}

int
RegisterFileModel::maxRegistersForDelay(int ports, double budgetNs) const
{
    int best = 0;
    for (int r = 16; r <= 4096; r *= 2) {
        if (delayNs(r, ports) <= budgetNs)
            best = r;
    }
    return best;
}

} // namespace vvsp
