/**
 * @file
 * Cycle-time estimation for a datapath model (the "Estimated Relative
 * Clock Speed" rows of Tables 1-2).
 *
 * The cycle time is the worst pipeline-stage delay plus clock
 * skew/latch overhead, and must also cover the crossbar propagation
 * (the switch gets a full cycle with no extra latch overhead; the
 * paper's XFER transport stage). Stage delays come from the VLSI
 * megacell models:
 *
 *  - operand fetch: register-file access,
 *  - execute: ALU (plus abs-diff gates if present) behind the
 *    cluster bypass multiplexer,
 *  - memory: composed module access; on I4C8S4C the address addition
 *    is folded into the same stage (the paper's "very significant
 *    impact on cycle time"),
 *  - multiply: per-stage delay of the selected multiplier.
 *
 * Following the paper (Sec. 3.2), complex 5-stage bypassing in 4-slot
 * clusters is *assumed* to cost ~5% of cycle time.
 */

#ifndef VVSP_VLSI_CLOCK_ESTIMATOR_HH
#define VVSP_VLSI_CLOCK_ESTIMATOR_HH

#include <string>

#include "arch/datapath_config.hh"
#include "vlsi/crossbar_model.hh"
#include "vlsi/fu_model.hh"
#include "vlsi/regfile_model.hh"
#include "vlsi/sram_model.hh"
#include "vlsi/technology.hh"

namespace vvsp
{

/** Stage-by-stage timing of a datapath model. */
struct ClockBreakdown
{
    double regFileNs = 0.0;   ///< operand-fetch stage.
    double executeNs = 0.0;   ///< bypass mux + ALU.
    double memoryNs = 0.0;    ///< local-RAM access stage.
    double multiplyNs = 0.0;  ///< multiplier stage (pipelined).
    double crossbarNs = 0.0;  ///< switch propagation (full cycle).
    double cycleNs = 0.0;     ///< resulting cycle time.
    double clockMhz = 0.0;    ///< 1000 / cycleNs.

    std::string str() const;
};

/** Estimates cycle time and clock rate of a datapath model. */
class ClockEstimator
{
  public:
    explicit ClockEstimator(const Technology &tech = Technology::um025());

    /** Full stage breakdown for a configuration. */
    ClockBreakdown estimate(const DatapathConfig &cfg) const;

    /** Clock rate in MHz. */
    double clockMhz(const DatapathConfig &cfg) const;

    /** Clock rate relative to a reference model (Table 1 header). */
    double relativeClock(const DatapathConfig &cfg,
                         const DatapathConfig &reference) const;

    /** Number of inputs on the cluster's operand-bypass multiplexers. */
    static int bypassInputs(const DatapathConfig &cfg);

  private:
    const Technology &tech_;
    CrossbarModel xbar_;
    RegisterFileModel rf_;
    SramModel sram_;
    FunctionalUnitModel fu_;
};

} // namespace vvsp

#endif // VVSP_VLSI_CLOCK_ESTIMATOR_HH
