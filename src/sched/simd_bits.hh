/**
 * @file
 * Wide bitwise kernels over uint64_t row-bitmap words.
 *
 * The reservation table's findFirstFit combines per-resource modulo
 * row bitmaps (class busy, crossbar send/receive saturation) into one
 * "blocked rows" mask before scanning for the first free row. The
 * combines are pure word-parallel OR/AND, so they vectorize exactly:
 * the portable path processes four 64-bit words per loop iteration;
 * when the compiler supports function-level AVX2 targeting
 * (VVSP_HAVE_AVX2 from the CMake feature check) a 256-bit path is
 * compiled as well and selected once at run time via
 * __builtin_cpu_supports, so the same binary runs on any x86-64 host.
 *
 * Both paths compute bit-identical results - they are the same
 * boolean algebra at different widths - which the
 * SimdBits.*Equivalence tests pin down.
 */

#ifndef VVSP_SCHED_SIMD_BITS_HH
#define VVSP_SCHED_SIMD_BITS_HH

#include <cstddef>
#include <cstdint>

namespace vvsp
{
namespace simdbits
{

/** dst[w] = a[w] | b[w] | c[w]. */
void or3(uint64_t *dst, const uint64_t *a, const uint64_t *b,
         const uint64_t *c, size_t words);

/** acc[w] &= src[w]. */
void andAccum(uint64_t *acc, const uint64_t *src, size_t words);

/** True when the AVX2 path is compiled in and the host supports it. */
bool avx2Active();

} // namespace simdbits
} // namespace vvsp

#endif // VVSP_SCHED_SIMD_BITS_HH
