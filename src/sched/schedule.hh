/**
 * @file
 * Result of scheduling one block onto a datapath model.
 *
 * Acyclic (list) schedules report their length in cycles including
 * the closing branch and its delay slots. Modulo schedules report
 * the initiation interval, stage count, and prologue/epilogue
 * lengths. Both report instruction-word counts (for the icache-fit
 * check) and the peak register pressure per cluster.
 */

#ifndef VVSP_SCHED_SCHEDULE_HH
#define VVSP_SCHED_SCHEDULE_HH

#include <string>
#include <vector>

#include "ir/operation.hh"

namespace vvsp
{

/** Where one operation landed. */
struct PlacedOp
{
    int cycle = -1;   ///< issue cycle (absolute, from block start).
    int cluster = 0;  ///< executing cluster.
    int slot = -1;    ///< issue slot within the cluster (-1: control).
};

/** A scheduled block. */
struct BlockSchedule
{
    /** Placement per operation index (parallel to the op vector). */
    std::vector<PlacedOp> placed;

    /** Acyclic: cycles from first issue to end of branch shadow. */
    int length = 0;

    /** Modulo schedule: initiation interval (0 for acyclic). */
    int ii = 0;
    /** Modulo schedule: number of overlapped stages. */
    int stages = 0;

    /** Long-instruction words occupied in the instruction cache. */
    int instructions = 0;

    /** Peak simultaneously-live values in any one cluster. */
    int maxLive = 0;

    /**
     * True when the II search exhausted its scheduling budget and
     * this is the best schedule found rather than the search's
     * normal answer. The cycle count is still correct for the
     * placements it holds — "degraded" means possibly suboptimal,
     * never wrong.
     */
    bool degraded = false;

    /** True when this is a software-pipelined (modulo) schedule. */
    bool isModulo() const { return ii > 0; }

    /** Prologue cycles before the kernel reaches steady state. */
    int prologueCycles() const { return isModulo() ? (stages - 1) * ii : 0; }

    /** Epilogue cycles draining the pipeline after the last start. */
    int epilogueCycles() const { return prologueCycles(); }

    /**
     * Total cycles to run `trips` iterations of a modulo-scheduled
     * loop, or trips * length for an acyclic loop-body schedule.
     */
    double loopCycles(double trips) const;

    /** Human-readable summary line. */
    std::string str() const;
};

} // namespace vvsp

#endif // VVSP_SCHED_SCHEDULE_HH
