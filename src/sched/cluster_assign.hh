/**
 * @file
 * Cluster assignment and inter-cluster transfer insertion.
 *
 * Most kernel variants replicate the whole computation SIMD-style
 * across identical clusters (Sec. 3.3), which needs no transfers:
 * everything stays on cluster 0 and the frame composer divides the
 * do-all trip count by the cluster count. Variants that gang several
 * clusters on one loop body ("the code is scheduled across four
 * clusters in order to gain extra resources", Sec. 3.3; the VBR
 * coder on the whole 33-issue machine) assign ops to clusters -
 * either by the kernel author or by the greedy partitioner here -
 * and then Xfer operations are inserted for every value that crosses
 * a register-file boundary.
 *
 * Loop induction variables are exempt from transfers: the single
 * control unit sequences all clusters, so loop counters are
 * architecturally visible everywhere.
 */

#ifndef VVSP_SCHED_CLUSTER_ASSIGN_HH
#define VVSP_SCHED_CLUSTER_ASSIGN_HH

#include <set>

#include "arch/machine_model.hh"
#include "ir/function.hh"

namespace vvsp
{

/**
 * Greedily spread operations over `clusters` clusters: memory ops go
 * to their buffer's cluster, other ops follow their operands' homes
 * with load balancing as the tie-break.
 */
void autoPartition(Function &fn, const MachineModel &machine,
                   int clusters);

/**
 * Insert Xfer operations for every cross-cluster register use and
 * rewrite consumers. Call after cluster assignment, before
 * scheduling. Induction variables never transfer.
 */
void insertTransfers(Function &fn);

/**
 * Clone read-only buffers (coefficient ROMs, input blocks) onto
 * every cluster that loads them and retarget those loads; clones
 * keep the original buffer name so workload preparation fills all
 * copies. Run between autoPartition and insertTransfers.
 */
void replicateReadOnlyBuffers(Function &fn);

/** Panic if a memory op sits on a different cluster than its buffer
 *  or any cluster index is out of range. */
void validateClusterAssignment(const Function &fn,
                               const MachineModel &machine);

/** Collect the induction variables of every loop in the function. */
std::set<Vreg> inductionVars(const Function &fn);

} // namespace vvsp

#endif // VVSP_SCHED_CLUSTER_ASSIGN_HH
