#include "sched/simd_bits.hh"

#if defined(VVSP_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace vvsp
{
namespace simdbits
{

namespace
{

/** Portable path: four 64-bit words per iteration. */
void
or3Portable(uint64_t *dst, const uint64_t *a, const uint64_t *b,
            const uint64_t *c, size_t words)
{
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        dst[w + 0] = a[w + 0] | b[w + 0] | c[w + 0];
        dst[w + 1] = a[w + 1] | b[w + 1] | c[w + 1];
        dst[w + 2] = a[w + 2] | b[w + 2] | c[w + 2];
        dst[w + 3] = a[w + 3] | b[w + 3] | c[w + 3];
    }
    for (; w < words; ++w)
        dst[w] = a[w] | b[w] | c[w];
}

void
andAccumPortable(uint64_t *acc, const uint64_t *src, size_t words)
{
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        acc[w + 0] &= src[w + 0];
        acc[w + 1] &= src[w + 1];
        acc[w + 2] &= src[w + 2];
        acc[w + 3] &= src[w + 3];
    }
    for (; w < words; ++w)
        acc[w] &= src[w];
}

#if defined(VVSP_HAVE_AVX2)

__attribute__((target("avx2"))) void
or3Avx2(uint64_t *dst, const uint64_t *a, const uint64_t *b,
        const uint64_t *c, size_t words)
{
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + w));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + w));
        __m256i vc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(c + w));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + w),
            _mm256_or_si256(_mm256_or_si256(va, vb), vc));
    }
    for (; w < words; ++w)
        dst[w] = a[w] | b[w] | c[w];
}

__attribute__((target("avx2"))) void
andAccumAvx2(uint64_t *acc, const uint64_t *src, size_t words)
{
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + w));
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + w));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + w),
                            _mm256_and_si256(va, vs));
    }
    for (; w < words; ++w)
        acc[w] &= src[w];
}

bool
hostHasAvx2()
{
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
}

#endif // VVSP_HAVE_AVX2

} // anonymous namespace

void
or3(uint64_t *dst, const uint64_t *a, const uint64_t *b,
    const uint64_t *c, size_t words)
{
#if defined(VVSP_HAVE_AVX2)
    if (hostHasAvx2()) {
        or3Avx2(dst, a, b, c, words);
        return;
    }
#endif
    or3Portable(dst, a, b, c, words);
}

void
andAccum(uint64_t *acc, const uint64_t *src, size_t words)
{
#if defined(VVSP_HAVE_AVX2)
    if (hostHasAvx2()) {
        andAccumAvx2(acc, src, words);
        return;
    }
#endif
    andAccumPortable(acc, src, words);
}

bool
avx2Active()
{
#if defined(VVSP_HAVE_AVX2)
    return hostHasAvx2();
#else
    return false;
#endif
}

} // namespace simdbits
} // namespace vvsp
