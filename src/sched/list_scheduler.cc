#include "sched/list_scheduler.hh"

#include <algorithm>

#include "sched/reg_pressure.hh"
#include "support/logging.hh"
#include "support/sched_arena.hh"

namespace vvsp
{

ListScheduler::ListScheduler(const MachineModel &machine, BankOfFn bank_of)
    : machine_(machine), bank_of_(std::move(bank_of)),
      table_(machine_, /*ii=*/0, bank_of_),
      stats_(obs::globalScope("sched"))
{
}

BlockSchedule
ListScheduler::schedule(const std::vector<Operation> &ops,
                        bool width1) const
{
    const int n = static_cast<int>(ops.size());
    BlockSchedule result;
    result.placed.assign(static_cast<size_t>(n), PlacedOp{});
    if (n == 0) {
        result.length = 0;
        return result;
    }

    for (const auto &op : ops) {
        vvsp_assert(machine_.canExecute(op),
                    "%s cannot execute '%s' (recipe must lower it)",
                    machine_.name().c_str(), op.str().c_str());
    }

    ddg_.build(ops, machine_.latencyFn(), /*loop_carried=*/false);
    const DependenceGraph &ddg = ddg_;

    int branch_idx = -1;
    for (int i = 0; i < n; ++i) {
        if (ops[static_cast<size_t>(i)].info().isBranch) {
            vvsp_assert(branch_idx < 0,
                        "more than one branch in a scheduled block");
            branch_idx = i;
        }
    }

    stats_.bump("list_runs");
    ReservationTable &table = table_;
    table.reset(/*ii=*/0, width1);
    ArenaVec<int32_t> start_a, preds_a, earliest_a, ready_a, pending_a;
    std::vector<int32_t> &start = *start_a;
    std::vector<int32_t> &unplaced_preds = *preds_a;
    std::vector<int32_t> &earliest = *earliest_a;
    start.assign(static_cast<size_t>(n), -1);
    unplaced_preds.assign(static_cast<size_t>(n), 0);
    earliest.assign(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        for (int e : ddg.predEdges(i)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            // The branch is placed separately at the end; edges out of
            // it (anti-deps on its condition) are trivially satisfied.
            if (edge.distance == 0 && edge.from != branch_idx)
                unplaced_preds[static_cast<size_t>(i)]++;
        }
    }

    auto priority_less = [&ddg](int32_t a, int32_t b) {
        int ha = ddg.height(a), hb = ddg.height(b);
        if (ha != hb)
            return ha > hb;
        return a < b;
    };

    // `ready` is kept sorted by priority at all times: the per-cycle
    // pass walks it in order and compacts survivors in place, and
    // ops that become ready during a cycle are batched in `pending`
    // and merged by sorted insertion afterwards (they are not
    // eligible until the next cycle anyway). priority_less is a
    // strict total order, so this reproduces the historical
    // sort-every-cycle schedule exactly.
    std::vector<int32_t> &ready = *ready_a;
    std::vector<int32_t> &pending = *pending_a;
    ready.clear();
    pending.clear();
    for (int i = 0; i < n; ++i) {
        if (i != branch_idx && unplaced_preds[static_cast<size_t>(i)] == 0)
            ready.push_back(i);
    }
    std::sort(ready.begin(), ready.end(), priority_less);

    int placed_count = branch_idx >= 0 ? 1 : 0;
    int cycle = 0;
    const int guard = 64 * n + 1024;
    while (placed_count < n) {
        vvsp_assert(cycle < guard, "list scheduler did not converge");
        size_t keep = 0;
        for (size_t rdi = 0; rdi < ready.size(); ++rdi) {
            int i = ready[rdi];
            if (earliest[static_cast<size_t>(i)] > cycle) {
                ready[keep++] = i;
                continue;
            }
            int slot = -1;
            if (table.tryReserve(ops[static_cast<size_t>(i)], cycle,
                                 &slot)) {
                start[static_cast<size_t>(i)] = cycle;
                result.placed[static_cast<size_t>(i)] =
                    PlacedOp{cycle, ops[static_cast<size_t>(i)].cluster,
                             slot};
                placed_count++;
                for (int e : ddg.succEdges(i)) {
                    const DepEdge &edge =
                        ddg.edges()[static_cast<size_t>(e)];
                    if (edge.distance != 0)
                        continue;
                    auto t = static_cast<size_t>(edge.to);
                    earliest[t] = std::max(earliest[t],
                                           cycle + edge.latency);
                    if (--unplaced_preds[t] == 0 &&
                        edge.to != branch_idx) {
                        pending.push_back(edge.to);
                    }
                }
            } else {
                ready[keep++] = i;
            }
        }
        ready.resize(keep);
        for (int32_t i : pending) {
            ready.insert(std::lower_bound(ready.begin(), ready.end(),
                                          i, priority_less),
                         i);
        }
        pending.clear();
        ++cycle;
    }

    int issue_max = 0;
    int completion_max = 0;
    for (int i = 0; i < n; ++i) {
        if (i == branch_idx)
            continue;
        int t = start[static_cast<size_t>(i)];
        issue_max = std::max(issue_max, t);
        if (ops[static_cast<size_t>(i)].info().hasDst) {
            completion_max = std::max(
                completion_max,
                t + machine_.latency(ops[static_cast<size_t>(i)]));
        }
    }

    int delay = machine_.branchDelaySlots();
    if (branch_idx >= 0) {
        int cond_ready = 0;
        for (int e : ddg.predEdges(branch_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            if (edge.distance != 0)
                continue;
            cond_ready = std::max(
                cond_ready,
                start[static_cast<size_t>(edge.from)] + edge.latency);
        }
        // The branch overlaps trailing ops in its delay slots. In
        // width-1 mode it consumes an instruction of its own, pushing
        // trailing ops one cycle later.
        int bc = width1
                     ? std::max(cond_ready, issue_max + 1 - delay)
                     : std::max(cond_ready,
                                std::max(0, issue_max - delay));
        result.placed[static_cast<size_t>(branch_idx)] =
            PlacedOp{bc, 0, -1};
        start[static_cast<size_t>(branch_idx)] = bc;
        result.length = std::max(issue_max + (width1 ? 2 : 1),
                                 bc + 1 + delay);
        result.length = std::max(result.length, completion_max);
    } else {
        result.length = std::max(issue_max + 1, completion_max);
    }

    result.instructions = result.length;
    result.maxLive = maxLivePerCluster(ops, result, machine_, 0);
    return result;
}

} // namespace vvsp
