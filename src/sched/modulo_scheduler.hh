/**
 * @file
 * Iterative modulo scheduler (software pipelining).
 *
 * Implements Rau's iterative modulo scheduling: the initiation
 * interval starts at MII = max(ResMII, RecMII) and grows until a
 * feasible schedule is found. Operation placement uses height
 * priority with a backtracking budget; forced placements evict
 * conflicting operations and dependence-violating successors.
 *
 * This is the "software pipelining" the paper applies to every
 * data-parallel kernel (Sec. 3.3); the full-motion-search inner loop
 * reaches II = 1 on an unconstrained cluster and II = 2 when the
 * single load/store unit of the I4C8* clusters is the bottleneck
 * (Sec. 3.4.1).
 */

#ifndef VVSP_SCHED_MODULO_SCHEDULER_HH
#define VVSP_SCHED_MODULO_SCHEDULER_HH

#include <vector>

#include "arch/machine_model.hh"
#include "obs/stats_registry.hh"
#include "sched/reservation_table.hh"
#include "sched/schedule.hh"

namespace vvsp
{

/** Modulo scheduler for an innermost-loop body. */
class ModuloScheduler
{
  public:
    ModuloScheduler(const MachineModel &machine, BankOfFn bank_of);

    /**
     * Software-pipeline the loop-body ops (cluster fields assigned;
     * loop-control ops included). Panics if no schedule is found up
     * to a generous II bound, which would be a scheduler bug since
     * II = length(list schedule) is always feasible.
     *
     * When max_live_target > 0 and the minimum-II schedule needs
     * more simultaneously-live values than the target, the II is
     * increased a few steps looking for a schedule that fits the
     * register file (Rau's register-pressure-driven II growth); the
     * lowest-pressure schedule found is returned either way.
     */
    BlockSchedule schedule(const std::vector<Operation> &ops,
                           int max_live_target = 0) const;

    /** Resource-constrained lower bound on the II. */
    int resourceMii(const std::vector<Operation> &ops) const;

  private:
    /**
     * One II try. `by_priority` lists op indices sorted by height
     * (descending, ties in program order) - the scheduling priority,
     * which is static per dependence graph, so it is computed once
     * in schedule() and shared by every attempt.
     */
    bool attempt(const std::vector<Operation> &ops,
                 const DependenceGraph &ddg, int ii,
                 const std::vector<int> &by_priority,
                 std::vector<int> *start) const;

    const MachineModel &machine_;
    BankOfFn bank_of_;
    /** Pooled across attempts; reset() per II tried. */
    mutable ReservationTable table_;
    obs::StatsScope stats_;
};

} // namespace vvsp

#endif // VVSP_SCHED_MODULO_SCHEDULER_HH
