/**
 * @file
 * Iterative modulo scheduler (software pipelining).
 *
 * Implements Rau's iterative modulo scheduling: the initiation
 * interval starts at MII = max(ResMII, RecMII) and grows until a
 * feasible schedule is found. Operation placement uses height
 * priority with a backtracking budget; forced placements evict
 * conflicting operations and dependence-violating successors.
 *
 * This is the "software pipelining" the paper applies to every
 * data-parallel kernel (Sec. 3.3); the full-motion-search inner loop
 * reaches II = 1 on an unconstrained cluster and II = 2 when the
 * single load/store unit of the I4C8* clusters is the bottleneck
 * (Sec. 3.4.1).
 */

#ifndef VVSP_SCHED_MODULO_SCHEDULER_HH
#define VVSP_SCHED_MODULO_SCHEDULER_HH

#include <optional>
#include <vector>

#include "arch/machine_model.hh"
#include "ir/dependence_graph.hh"
#include "obs/stats_registry.hh"
#include "sched/reservation_table.hh"
#include "sched/schedule.hh"

namespace vvsp
{

class ThreadPool;

/** Modulo scheduler for an innermost-loop body. */
class ModuloScheduler
{
  public:
    ModuloScheduler(const MachineModel &machine, BankOfFn bank_of);

    /**
     * Configure process-wide speculative II search: candidate IIs of
     * one schedule() call are attempted concurrently on `pool` in
     * waves of `width`, and the results are consumed in ascending II
     * order with exactly the sequential search's control flow - each
     * attempt is a pure function of (ops, ddg, ii), so the outcome is
     * bit-identical to the sequential search at any thread count.
     * width <= 1 or a null pool keeps the sequential path (the
     * default). The pool must outlive scheduling; callers clear the
     * configuration (nullptr, 1) when their pool goes away.
     */
    static void setIiSearch(ThreadPool *pool, int width);

    /**
     * Software-pipeline the loop-body ops (cluster fields assigned;
     * loop-control ops included). Panics if no schedule is found up
     * to a generous II bound, which would be a scheduler bug since
     * II = length(list schedule) is always feasible.
     *
     * When max_live_target > 0 and the minimum-II schedule needs
     * more simultaneously-live values than the target, the II is
     * increased a few steps looking for a schedule that fits the
     * register file (Rau's register-pressure-driven II growth); the
     * lowest-pressure schedule found is returned either way.
     */
    BlockSchedule schedule(const std::vector<Operation> &ops,
                           int max_live_target = 0) const;

    /**
     * schedule() under a candidate-II budget: at most `ii_budget`
     * candidate IIs are examined (each counts once, feasible or
     * not; negative means unlimited). If the search decides within
     * budget, the result is identical to schedule(). On exhaustion,
     * the best feasible schedule found so far is returned with its
     * `degraded` flag set; if no candidate was feasible, nullopt —
     * the caller falls back to an acyclic list schedule. The budget
     * is consumed in ascending II order in both the sequential and
     * the speculative search, so results stay bit-identical at any
     * thread count.
     *
     * The "sched/ii_attempt" failpoint, evaluated once per candidate
     * II in ascending order, forces that candidate infeasible —
     * tests use it to exhaust the budget deterministically.
     */
    std::optional<BlockSchedule>
    scheduleBudgeted(const std::vector<Operation> &ops,
                     int max_live_target, long ii_budget) const;

    /** Resource-constrained lower bound on the II. */
    int resourceMii(const std::vector<Operation> &ops) const;

  private:
    /**
     * One II try. `by_priority` lists op indices sorted by height
     * (descending, ties in program order) - the scheduling priority,
     * which is static per dependence graph, so it is computed once
     * in schedule() and shared by every attempt. The caller supplies
     * the reservation table (the pooled member for the sequential
     * search, a private table per speculative task); all other
     * scratch comes from the worker's SchedArena.
     */
    bool attempt(const std::vector<Operation> &ops,
                 const DependenceGraph &ddg, int ii,
                 const std::vector<int> &by_priority,
                 ReservationTable &table, std::vector<int> *start) const;

    const MachineModel &machine_;
    BankOfFn bank_of_;
    /** Pooled across attempts; reset() per II tried. */
    mutable ReservationTable table_;
    /** Pooled across schedule() calls; rebuilt in place per block. */
    mutable DependenceGraph ddg_;
    obs::StatsScope stats_;
};

} // namespace vvsp

#endif // VVSP_SCHED_MODULO_SCHEDULER_HH
