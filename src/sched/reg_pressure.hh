/**
 * @file
 * Register-pressure (MaxLive) analysis of a scheduled block.
 *
 * The schedulers work on unbounded virtual registers; this analysis
 * enforces the cluster's register-file capacity after the fact, the
 * way the paper rejects schedules that "require more registers than
 * are available in one cluster" (Sec. 3.4.3). For modulo schedules
 * the lifetime of each value wraps the initiation interval, so a
 * value living longer than one II counts once per overlapped stage
 * (the cost modulo variable expansion would pay in real code).
 */

#ifndef VVSP_SCHED_REG_PRESSURE_HH
#define VVSP_SCHED_REG_PRESSURE_HH

#include <vector>

#include "arch/machine_model.hh"
#include "sched/schedule.hh"

namespace vvsp
{

/**
 * Peak number of simultaneously live values in any one cluster.
 *
 * @param ops      the block's operations.
 * @param sched    their placement.
 * @param machine  the datapath (for latencies).
 * @param ii       initiation interval; 0 for acyclic schedules.
 */
int maxLivePerCluster(const std::vector<Operation> &ops,
                      const BlockSchedule &sched,
                      const MachineModel &machine, int ii);

} // namespace vvsp

#endif // VVSP_SCHED_REG_PRESSURE_HH
