#include "sched/cluster_assign.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"
#include "xform/passes.hh"

namespace vvsp
{

std::set<Vreg>
inductionVars(const Function &fn)
{
    std::set<Vreg> ivs;
    forEachNode(const_cast<Function &>(fn).body, [&ivs](Node &n) {
        if (n.kind() == NodeKind::Loop) {
            const auto &loop = static_cast<const LoopNode &>(n);
            if (loop.inductionVar != kNoVreg)
                ivs.insert(loop.inductionVar);
        }
    });
    return ivs;
}

namespace
{

/** Union-find over operation ids. */
class UnionFind
{
  public:
    int
    find(int x)
    {
        auto it = parent_.find(x);
        if (it == parent_.end() || it->second == x)
            return x;
        int root = find(it->second);
        parent_[x] = root;
        return root;
    }

    void
    unite(int a, int b)
    {
        int ra = find(a), rb = find(b);
        if (ra != rb)
            parent_[ra] = rb;
    }

  private:
    std::map<int, int> parent_;
};

} // anonymous namespace

void
autoPartition(Function &fn, const MachineModel &machine, int clusters)
{
    vvsp_assert(clusters >= 1 && clusters <= machine.clusters(),
                "cannot partition onto %d of %d clusters", clusters,
                machine.clusters());
    auto ivs = inductionVars(fn);
    auto uses = passes::useCounts(fn);

    // Group operations into dependence trees: union a consumer with
    // the producer of each privately-used register operand. Memory
    // operations stay pinned to their buffer's cluster, and widely
    // shared values (loop bases, broadcast pixels) do not glue their
    // consumers together - they are transferred instead. This is the
    // classic bottom-up-greedy style clustering.
    std::map<Vreg, Operation *> def_of;
    std::vector<Operation *> order;
    passes::forEachBlock(fn, [&](BlockNode &block) {
        for (auto &op : block.ops) {
            order.push_back(&op);
            if (op.info().hasDst && op.dst != kNoVreg)
                def_of[op.dst] = &op;
        }
    });

    // Buffers that are only ever read can be replicated per cluster
    // after partitioning, so their loads join their consumers' trees
    // instead of pinning to the buffer's home cluster.
    std::set<int> stored;
    passes::forEachBlock(fn, [&stored](BlockNode &block) {
        for (const auto &op : block.ops) {
            if (op.op == Opcode::Store)
                stored.insert(op.buffer);
        }
    });
    auto pinned = [&stored](const Operation &op) {
        if (!op.info().isMemory)
            return false;
        return op.op == Opcode::Store || stored.count(op.buffer) > 0;
    };

    UnionFind forest;
    for (Operation *op : order) {
        if (pinned(*op) || op->info().isBranch)
            continue;
        for (const auto &s : op->src) {
            if (!s.isReg() || ivs.count(s.reg))
                continue;
            if (s.reg < uses.size() && uses[s.reg] > 3)
                continue; // shared input: transfer, don't glue.
            auto it = def_of.find(s.reg);
            if (it == def_of.end() || pinned(*it->second))
                continue;
            forest.unite(op->id, it->second->id);
        }
    }

    // Component sizes, largest first, bin-packed onto the least
    // loaded cluster. Memory traffic pre-loads the buffers' homes.
    std::map<int, std::vector<Operation *>> components;
    std::vector<long> load(static_cast<size_t>(clusters), 0);
    for (Operation *op : order) {
        if (pinned(*op)) {
            int c = fn.buffer(op->buffer).cluster;
            vvsp_assert(c < clusters,
                        "buffer '%s' on cluster %d outside the "
                        "partition",
                        fn.buffer(op->buffer).name.c_str(), c);
            op->cluster = c;
            load[static_cast<size_t>(c)]++;
        } else if (op->info().isBranch) {
            op->cluster = 0; // control issues from the sequencer.
        } else {
            components[forest.find(op->id)].push_back(op);
        }
    }

    std::vector<std::vector<Operation *> *> by_size;
    by_size.reserve(components.size());
    for (auto &[root, ops] : components)
        by_size.push_back(&ops);
    std::sort(by_size.begin(), by_size.end(),
              [](const auto *a, const auto *b) {
                  return a->size() > b->size();
              });
    for (auto *ops : by_size) {
        int best = 0;
        for (int c = 1; c < clusters; ++c) {
            if (load[static_cast<size_t>(c)] <
                load[static_cast<size_t>(best)]) {
                best = c;
            }
        }
        for (Operation *op : *ops)
            op->cluster = best;
        load[static_cast<size_t>(best)] +=
            static_cast<long>(ops->size());
    }
}

void
replicateReadOnlyBuffers(Function &fn)
{
    std::set<int> stored;
    std::map<std::pair<int, int>, std::vector<Operation *>> loads;
    passes::forEachBlock(fn, [&](BlockNode &block) {
        for (auto &op : block.ops) {
            if (op.op == Opcode::Store)
                stored.insert(op.buffer);
            else if (op.op == Opcode::Load)
                loads[{op.buffer, op.cluster}].push_back(&op);
        }
    });

    std::map<std::pair<int, int>, int> clone_of;
    for (auto &[key, ops] : loads) {
        auto [buffer, cluster] = key;
        if (stored.count(buffer))
            continue;
        if (fn.buffer(buffer).cluster == cluster)
            continue;
        auto it = clone_of.find(key);
        if (it == clone_of.end()) {
            MemBuffer clone = fn.buffer(buffer);
            clone.id = static_cast<int>(fn.buffers.size());
            clone.cluster = cluster;
            fn.buffers.push_back(clone);
            it = clone_of.emplace(key, clone.id).first;
        }
        for (Operation *op : ops)
            op->buffer = it->second;
    }
}

void
insertTransfers(Function &fn)
{
    std::map<Vreg, int> home; // most recent definition's cluster.
    auto ivs = inductionVars(fn);

    passes::forEachBlock(fn, [&](BlockNode &block) {
        // (source vreg, target cluster) -> transferred copy.
        std::map<std::pair<Vreg, int>, Vreg> arrived;
        std::vector<Operation> out;
        out.reserve(block.ops.size());

        auto ensure_local = [&](Operand &o, int target) {
            if (!o.isReg() || ivs.count(o.reg))
                return;
            auto it = home.find(o.reg);
            int src_cluster = it == home.end() ? target : it->second;
            if (src_cluster == target)
                return;
            auto key = std::make_pair(o.reg, target);
            auto hit = arrived.find(key);
            if (hit == arrived.end()) {
                Operation x;
                x.op = Opcode::Xfer;
                x.dst = fn.newVreg();
                x.src = {o, Operand::none(), Operand::none()};
                x.cluster = src_cluster;
                x.dstCluster = target;
                x.id = fn.newOpId();
                out.push_back(x);
                hit = arrived.emplace(key, x.dst).first;
            }
            o = Operand::ofReg(hit->second);
        };

        for (auto op : block.ops) {
            for (auto &s : op.src)
                ensure_local(s, op.cluster);
            ensure_local(op.pred, op.cluster);
            out.push_back(op);
            if (op.info().hasDst && op.dst != kNoVreg) {
                home[op.dst] = op.op == Opcode::Xfer ? op.dstCluster
                                                     : op.cluster;
                // A redefinition invalidates stale copies elsewhere.
                for (auto it = arrived.begin(); it != arrived.end();) {
                    if (it->first.first == op.dst)
                        it = arrived.erase(it);
                    else
                        ++it;
                }
            }
        }
        block.ops = std::move(out);
    });
}

void
validateClusterAssignment(const Function &fn, const MachineModel &machine)
{
    forEachNode(const_cast<Function &>(fn).body, [&](Node &n) {
        if (n.kind() != NodeKind::Block)
            return;
        for (const auto &op : static_cast<const BlockNode &>(n).ops) {
            vvsp_assert(op.cluster >= 0 &&
                            op.cluster < machine.clusters(),
                        "op '%s' on cluster %d of %d", op.str().c_str(),
                        op.cluster, machine.clusters());
            if (op.info().isMemory) {
                int want = fn.buffer(op.buffer).cluster;
                vvsp_assert(op.cluster == want,
                            "memory op '%s' on cluster %d but buffer "
                            "'%s' lives on cluster %d",
                            op.str().c_str(), op.cluster,
                            fn.buffer(op.buffer).name.c_str(), want);
            }
        }
    });
}

} // namespace vvsp
