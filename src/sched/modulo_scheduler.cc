#include "sched/modulo_scheduler.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <map>
#include <numeric>

#include "sched/reg_pressure.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/sched_arena.hh"
#include "support/thread_pool.hh"

namespace vvsp
{

namespace
{

/** Process-wide speculative II-search configuration. */
std::atomic<ThreadPool *> g_iiPool{nullptr};
std::atomic<int> g_iiWidth{1};

} // anonymous namespace

void
ModuloScheduler::setIiSearch(ThreadPool *pool, int width)
{
    g_iiPool.store(pool, std::memory_order_release);
    g_iiWidth.store(width, std::memory_order_release);
}

ModuloScheduler::ModuloScheduler(const MachineModel &machine,
                                 BankOfFn bank_of)
    : machine_(machine), bank_of_(std::move(bank_of)),
      table_(machine_, /*ii=*/1, bank_of_),
      stats_(obs::globalScope("sched"))
{
}

int
ModuloScheduler::resourceMii(const std::vector<Operation> &ops) const
{
    const int clusters = machine_.clusters();
    const int banks = std::max(1, machine_.memBanks());
    // Per-cluster class counts, flat: [0,C) total, [C,2C) mult,
    // [2C,3C) shift, [3C,4C) sends, [4C,5C) receives.
    ArenaVec<int32_t> counts;
    counts->assign(static_cast<size_t>(5 * clusters), 0);
    int32_t *total = counts->data();
    int32_t *mult = total + clusters;
    int32_t *shift = mult + clusters;
    int32_t *sends = shift + clusters;
    int32_t *receives = sends + clusters;
    ArenaVec<int32_t> mem_cnt; // (cluster, bank), banks in range.
    mem_cnt->assign(static_cast<size_t>(clusters) *
                        static_cast<size_t>(banks),
                    0);
    std::map<std::pair<int, int>, int> mem_odd; // out-of-range banks.
    int branches = 0;
    for (const auto &op : ops) {
        switch (op.info().fuClass) {
          case FuClass::Branch:
            branches++;
            continue;
          case FuClass::None:
            continue;
          default:
            break;
        }
        total[op.cluster]++;
        switch (op.info().fuClass) {
          case FuClass::Mult:
            mult[op.cluster]++;
            break;
          case FuClass::Shift:
            shift[op.cluster]++;
            break;
          case FuClass::Mem: {
            int bank = bank_of_ ? bank_of_(op.buffer) : 0;
            if (bank >= 0 && bank < banks) {
                (*mem_cnt)[static_cast<size_t>(op.cluster) *
                               static_cast<size_t>(banks) +
                           static_cast<size_t>(bank)]++;
            } else {
                mem_odd[{op.cluster, bank}]++;
            }
            break;
          }
          case FuClass::Xbar:
            sends[op.cluster]++;
            receives[op.dstCluster]++;
            break;
          default:
            break;
        }
        // Abs-diff issues from any ALU slot: no dedicated bound.
    }

    auto ceil_div = [](int a, int b) { return (a + b - 1) / b; };
    auto servers_of = [this](int bank) {
        int servers = 0;
        for (const auto &caps : machine_.slotCaps()) {
            if (caps.memBank == -2 || caps.memBank == bank)
                servers++;
        }
        return servers;
    };
    const ClusterConfig &cl = machine_.config().cluster;
    int mii = std::max(1, branches);
    int ports = machine_.crossbarPortsPerCluster();
    for (int c = 0; c < clusters; ++c) {
        mii = std::max(mii, ceil_div(total[c], cl.issueSlots));
        if (mult[c] > 0)
            mii = std::max(mii, ceil_div(mult[c], cl.numMultipliers));
        if (shift[c] > 0)
            mii = std::max(mii, ceil_div(shift[c], cl.numShifters));
        if (sends[c] > 0)
            mii = std::max(mii, ceil_div(sends[c], ports));
        if (receives[c] > 0)
            mii = std::max(mii, ceil_div(receives[c], ports));
        for (int b = 0; b < banks; ++b) {
            int k = (*mem_cnt)[static_cast<size_t>(c) *
                                   static_cast<size_t>(banks) +
                               static_cast<size_t>(b)];
            if (k == 0)
                continue;
            int servers = servers_of(b);
            vvsp_assert(servers > 0,
                        "no load/store unit serves bank %d", b);
            mii = std::max(mii, ceil_div(k, servers));
        }
    }
    for (const auto &[cb, k] : mem_odd) {
        int servers = servers_of(cb.second);
        vvsp_assert(servers > 0, "no load/store unit serves bank %d",
                    cb.second);
        mii = std::max(mii, ceil_div(k, servers));
    }
    return mii;
}

bool
ModuloScheduler::attempt(const std::vector<Operation> &ops,
                         const DependenceGraph &ddg, int ii,
                         const std::vector<int> &by_priority,
                         ReservationTable &table,
                         std::vector<int> *start) const
{
    const int n = static_cast<int>(ops.size());
    start->assign(static_cast<size_t>(n), -1);
    // All scratch from the worker's arena: zero heap churn at steady
    // state, and safe under speculative parallel attempts (each
    // worker thread has its own arena).
    ArenaVec<int32_t> prev_a, slot_a, rank_a, head_a, nxt_a, prv_a;
    std::vector<int32_t> &prev = *prev_a;
    std::vector<int32_t> &slot_of = *slot_a;
    std::vector<int32_t> &rank_of = *rank_a;
    prev.assign(static_cast<size_t>(n), -1);
    slot_of.assign(static_cast<size_t>(n), -1);
    rank_of.resize(static_cast<size_t>(n));
    table.reset(ii);

    // Ops placed in each modulo row as intrusive doubly-linked lists:
    // forced placement evicts a row's occupants by walking its list
    // instead of scanning all n ops.
    std::vector<int32_t> &row_head = *head_a;
    std::vector<int32_t> &nxt = *nxt_a;
    std::vector<int32_t> &prv = *prv_a;
    row_head.assign(static_cast<size_t>(ii), -1);
    nxt.assign(static_cast<size_t>(n), -1);
    prv.assign(static_cast<size_t>(n), -1);
    auto row_link = [&](int i, int cycle) {
        int r = cycle % ii;
        int h = row_head[static_cast<size_t>(r)];
        nxt[static_cast<size_t>(i)] = h;
        prv[static_cast<size_t>(i)] = -r - 2; // head marker.
        if (h >= 0)
            prv[static_cast<size_t>(h)] = i;
        row_head[static_cast<size_t>(r)] = i;
    };
    auto row_unlink = [&](int i) {
        int p = prv[static_cast<size_t>(i)];
        int x = nxt[static_cast<size_t>(i)];
        if (p >= 0)
            nxt[static_cast<size_t>(p)] = x;
        else
            row_head[static_cast<size_t>(-p - 2)] = x;
        if (x >= 0)
            prv[static_cast<size_t>(x)] = p;
    };

    // Unscheduled ops as a bitset over priority ranks: the first set
    // bit is the next op to place, so selection is a word scan
    // instead of an O(n) height sweep per placement.
    for (int r = 0; r < n; ++r)
        rank_of[static_cast<size_t>(by_priority[static_cast<size_t>(
            r)])] = r;
    ArenaVec<uint64_t> unplaced_a;
    std::vector<uint64_t> &unplaced = *unplaced_a;
    unplaced.assign((static_cast<size_t>(n) + 63) / 64, ~uint64_t{0});
    if (n % 64)
        unplaced.back() = (uint64_t{1} << (n % 64)) - 1;

    auto unschedule = [&](int i) {
        if ((*start)[static_cast<size_t>(i)] < 0)
            return;
        table.release(ops[static_cast<size_t>(i)],
                      (*start)[static_cast<size_t>(i)],
                      slot_of[static_cast<size_t>(i)]);
        (*start)[static_cast<size_t>(i)] = -1;
        row_unlink(i);
        int r = rank_of[static_cast<size_t>(i)];
        unplaced[static_cast<size_t>(r) / 64] |= uint64_t{1}
                                                 << (r % 64);
    };

    long budget = 32L * n + 256;
    while (true) {
        // Highest-priority unscheduled op: height descending, ties
        // in program order - i.e. the lowest set rank.
        int op_idx = -1;
        for (size_t w = 0; w < unplaced.size(); ++w) {
            if (unplaced[w]) {
                int r = static_cast<int>(
                    w * 64 +
                    static_cast<size_t>(std::countr_zero(unplaced[w])));
                op_idx = by_priority[static_cast<size_t>(r)];
                break;
            }
        }
        if (op_idx < 0)
            return true; // all placed.
        if (budget-- <= 0)
            return false;

        int estart = 0;
        for (int e : ddg.predEdges(op_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            int from = (*start)[static_cast<size_t>(edge.from)];
            if (from < 0)
                continue;
            estart = std::max(estart,
                              from + edge.latency - ii * edge.distance);
        }

        const Operation &op = ops[static_cast<size_t>(op_idx)];
        int slot = -1;
        int placed_at = table.findFirstFit(op, estart, &slot);
        if (placed_at < 0) {
            // Forced placement: free the modulo row and take it.
            // Eviction releases independent reservations, so the
            // walk order over the row's occupants does not matter.
            int t = std::max(estart,
                             prev[static_cast<size_t>(op_idx)] + 1);
            for (int i = row_head[static_cast<size_t>(t % ii)];
                 i >= 0;) {
                int next = nxt[static_cast<size_t>(i)];
                unschedule(i);
                i = next;
            }
            bool ok = table.tryReserve(op, t, &slot);
            vvsp_assert(ok, "forced placement failed at t=%d ii=%d", t,
                        ii);
            placed_at = t;
        }
        (*start)[static_cast<size_t>(op_idx)] = placed_at;
        slot_of[static_cast<size_t>(op_idx)] = slot;
        prev[static_cast<size_t>(op_idx)] = placed_at;
        row_link(op_idx, placed_at);
        {
            int r = rank_of[static_cast<size_t>(op_idx)];
            unplaced[static_cast<size_t>(r) / 64] &=
                ~(uint64_t{1} << (r % 64));
        }

        // Evict successors whose dependence the new placement breaks.
        for (int e : ddg.succEdges(op_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            int to = (*start)[static_cast<size_t>(edge.to)];
            if (edge.to == op_idx || to < 0)
                continue;
            if (to < placed_at + edge.latency - ii * edge.distance)
                unschedule(edge.to);
        }
        // Self-edges (loop-carried) must hold: lat <= ii * dist.
        for (int e : ddg.succEdges(op_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            if (edge.to == op_idx && edge.latency > ii * edge.distance)
                return false; // recurrence cannot fit this II.
        }
    }
}

BlockSchedule
ModuloScheduler::schedule(const std::vector<Operation> &ops,
                          int max_live_target) const
{
    auto result = scheduleBudgeted(ops, max_live_target,
                                   /*ii_budget=*/-1);
    if (!result) {
        vvsp_panic("modulo scheduler found no II for %d ops on %s",
                   static_cast<int>(ops.size()),
                   machine_.name().c_str());
    }
    return std::move(*result);
}

std::optional<BlockSchedule>
ModuloScheduler::scheduleBudgeted(const std::vector<Operation> &ops,
                                  int max_live_target,
                                  long ii_budget) const
{
    const int n = static_cast<int>(ops.size());
    vvsp_assert(n > 0, "modulo scheduling an empty block");
    for (const auto &op : ops) {
        vvsp_assert(machine_.canExecute(op),
                    "%s cannot execute '%s' (recipe must lower it)",
                    machine_.name().c_str(), op.str().c_str());
    }

    stats_.bump("modulo_runs");
    ddg_.build(ops, machine_.latencyFn(), /*loop_carried=*/true);
    const DependenceGraph &ddg = ddg_;
    int mii = std::max(resourceMii(ops), ddg.recurrenceMii());

    // Static scheduling priority, shared by every II attempt.
    std::vector<int> by_priority(static_cast<size_t>(n));
    std::iota(by_priority.begin(), by_priority.end(), 0);
    std::stable_sort(by_priority.begin(), by_priority.end(),
                     [&ddg](int a, int b) {
                         return ddg.height(a) > ddg.height(b);
                     });

    auto build = [&](int ii,
                     const std::vector<int> &start) -> BlockSchedule {
        BlockSchedule result;
        result.ii = ii;
        result.placed.assign(static_cast<size_t>(n), PlacedOp{});
        int max_start = 0;
        for (int i = 0; i < n; ++i) {
            result.placed[static_cast<size_t>(i)] =
                PlacedOp{start[static_cast<size_t>(i)],
                         ops[static_cast<size_t>(i)].cluster, 0};
            max_start = std::max(max_start,
                                 start[static_cast<size_t>(i)]);
        }
        result.stages = max_start / ii + 1;
        result.length = max_start + 1;
        // Kernel-only code: the machine's predicated execution fills
        // and drains the pipeline from the same II instruction words
        // (prologue/epilogue cost cycles but no icache space).
        result.instructions = ii;
        result.maxLive = maxLivePerCluster(ops, result, machine_, ii);
        return result;
    };

    // Feasible IIs are consumed in ascending order with the same
    // control flow whether attempts ran sequentially or
    // speculatively, so both paths return bit-identical schedules.
    BlockSchedule best;
    bool have_best = false;
    int pressure_retries = 0;
    BlockSchedule decided;
    auto consume = [&](BlockSchedule cand) -> bool {
        if (max_live_target <= 0 || cand.maxLive <= max_live_target) {
            decided = std::move(cand);
            return true;
        }
        if (!have_best || cand.maxLive < best.maxLive) {
            best = std::move(cand);
            have_best = true;
        }
        // A few slack steps often untangle the bin-packing enough
        // for value lifetimes to shorten; give up after that.
        if (++pressure_retries >= 6) {
            decided = best;
            return true;
        }
        return false;
    };

    // Candidate-II budget, consumed in ascending II order at the
    // point each candidate's result is (or would be) inspected — the
    // same accounting in both search paths, so budgeted runs stay
    // bit-identical at any thread count. The "sched/ii_attempt"
    // failpoint is likewise evaluated once per candidate, in order.
    long budget = ii_budget < 0 ? std::numeric_limits<long>::max()
                                : ii_budget;
    bool exhausted = false;

    const int max_ii = mii + 2 * n + 16;
    ThreadPool *pool = g_iiPool.load(std::memory_order_acquire);
    int width = g_iiWidth.load(std::memory_order_acquire);
    if (pool != nullptr && width > 1) {
        // Speculative search: attempt a wave of candidate IIs
        // concurrently, then replay the sequential decision over the
        // wave's results in ascending II order. attempt() is a pure
        // function of (ops, ddg, ii) with its own table and arena
        // scratch, so extra speculative results are simply discarded.
        for (int base = mii; base <= max_ii && !exhausted;) {
            int wave = std::min(width, max_ii - base + 1);
            std::vector<uint8_t> ok(static_cast<size_t>(wave), 0);
            std::vector<BlockSchedule> cands(
                static_cast<size_t>(wave));
            TaskGroup group(pool);
            for (int k = 0; k < wave; ++k) {
                group.submit([&, k, base] {
                    int ii = base + k;
                    ReservationTable tab(machine_, ii, bank_of_);
                    std::vector<int> start;
                    if (attempt(ops, ddg, ii, by_priority, tab,
                                &start)) {
                        cands[static_cast<size_t>(k)] =
                            build(ii, start);
                        ok[static_cast<size_t>(k)] = 1;
                    }
                });
            }
            group.wait();
            for (int k = 0; k < wave; ++k) {
                if (budget-- <= 0) {
                    exhausted = true;
                    break;
                }
                if (failpoint::evaluate("sched/ii_attempt"))
                    continue; // forced infeasible.
                if (!ok[static_cast<size_t>(k)])
                    continue;
                if (consume(std::move(cands[static_cast<size_t>(k)])))
                    return decided;
            }
            base += wave;
        }
    } else {
        std::vector<int> start;
        for (int ii = mii; ii <= max_ii; ++ii) {
            if (budget-- <= 0) {
                exhausted = true;
                break;
            }
            if (failpoint::evaluate("sched/ii_attempt"))
                continue; // forced infeasible.
            if (!attempt(ops, ddg, ii, by_priority, table_, &start))
                continue;
            if (consume(build(ii, start)))
                return decided;
        }
    }
    if (exhausted)
        stats_.bump("budget_exhausted");
    if (have_best) {
        best.degraded = exhausted;
        return best;
    }
    return std::nullopt;
}

} // namespace vvsp
