#include "sched/modulo_scheduler.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>

#include "sched/reg_pressure.hh"
#include "support/logging.hh"

namespace vvsp
{

ModuloScheduler::ModuloScheduler(const MachineModel &machine,
                                 BankOfFn bank_of)
    : machine_(machine), bank_of_(std::move(bank_of)),
      table_(machine_, /*ii=*/1, bank_of_),
      stats_(obs::globalScope("sched"))
{
}

int
ModuloScheduler::resourceMii(const std::vector<Operation> &ops) const
{
    // Per-cluster class counts.
    std::map<int, int> total, mult, shift, absdiff, sends, receives;
    std::map<std::pair<int, int>, int> mem; // (cluster, bank).
    int branches = 0;
    for (const auto &op : ops) {
        switch (op.info().fuClass) {
          case FuClass::Branch:
            branches++;
            continue;
          case FuClass::None:
            continue;
          default:
            break;
        }
        total[op.cluster]++;
        switch (op.info().fuClass) {
          case FuClass::Mult:
            mult[op.cluster]++;
            break;
          case FuClass::Shift:
            shift[op.cluster]++;
            break;
          case FuClass::Mem: {
            int bank = bank_of_ ? bank_of_(op.buffer) : 0;
            mem[{op.cluster, bank}]++;
            break;
          }
          case FuClass::Xbar:
            sends[op.cluster]++;
            receives[op.dstCluster]++;
            break;
          default:
            break;
        }
        if (op.op == Opcode::AbsDiff)
            absdiff[op.cluster]++;
    }

    auto ceil_div = [](int a, int b) { return (a + b - 1) / b; };
    const ClusterConfig &cl = machine_.config().cluster;
    int mii = std::max(1, branches);
    for (const auto &[c, k] : total)
        mii = std::max(mii, ceil_div(k, cl.issueSlots));
    for (const auto &[c, k] : mult)
        mii = std::max(mii, ceil_div(k, cl.numMultipliers));
    for (const auto &[c, k] : shift)
        mii = std::max(mii, ceil_div(k, cl.numShifters));
    (void)absdiff; // abs-diff issues from any ALU slot.
    for (const auto &[cb, k] : mem) {
        int bank = cb.second;
        int servers = 0;
        for (const auto &caps : machine_.slotCaps()) {
            if (caps.memBank == -2 || caps.memBank == bank)
                servers++;
        }
        vvsp_assert(servers > 0, "no load/store unit serves bank %d",
                    bank);
        mii = std::max(mii, ceil_div(k, servers));
    }
    int ports = machine_.crossbarPortsPerCluster();
    for (const auto &[c, k] : sends)
        mii = std::max(mii, ceil_div(k, ports));
    for (const auto &[c, k] : receives)
        mii = std::max(mii, ceil_div(k, ports));
    return mii;
}

bool
ModuloScheduler::attempt(const std::vector<Operation> &ops,
                         const DependenceGraph &ddg, int ii,
                         const std::vector<int> &by_priority,
                         std::vector<int> *start) const
{
    const int n = static_cast<int>(ops.size());
    start->assign(static_cast<size_t>(n), -1);
    std::vector<int> prev(static_cast<size_t>(n), -1);
    std::vector<int> slot_of(static_cast<size_t>(n), -1);
    ReservationTable &table = table_;
    table.reset(ii);

    // Unscheduled ops as a bitset over priority ranks: the first set
    // bit is the next op to place, so selection is a word scan
    // instead of an O(n) height sweep per placement.
    std::vector<int> rank_of(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r)
        rank_of[static_cast<size_t>(by_priority[static_cast<size_t>(
            r)])] = r;
    std::vector<uint64_t> unplaced(
        (static_cast<size_t>(n) + 63) / 64, ~uint64_t{0});
    if (n % 64)
        unplaced.back() = (uint64_t{1} << (n % 64)) - 1;

    auto unschedule = [&](int i) {
        if ((*start)[static_cast<size_t>(i)] < 0)
            return;
        table.release(ops[static_cast<size_t>(i)],
                      (*start)[static_cast<size_t>(i)],
                      slot_of[static_cast<size_t>(i)]);
        (*start)[static_cast<size_t>(i)] = -1;
        int r = rank_of[static_cast<size_t>(i)];
        unplaced[static_cast<size_t>(r) / 64] |= uint64_t{1}
                                                 << (r % 64);
    };

    long budget = 32L * n + 256;
    while (true) {
        // Highest-priority unscheduled op: height descending, ties
        // in program order - i.e. the lowest set rank.
        int op_idx = -1;
        for (size_t w = 0; w < unplaced.size(); ++w) {
            if (unplaced[w]) {
                int r = static_cast<int>(
                    w * 64 +
                    static_cast<size_t>(std::countr_zero(unplaced[w])));
                op_idx = by_priority[static_cast<size_t>(r)];
                break;
            }
        }
        if (op_idx < 0)
            return true; // all placed.
        if (budget-- <= 0)
            return false;

        int estart = 0;
        for (int e : ddg.predEdges(op_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            int from = (*start)[static_cast<size_t>(edge.from)];
            if (from < 0)
                continue;
            estart = std::max(estart,
                              from + edge.latency - ii * edge.distance);
        }

        const Operation &op = ops[static_cast<size_t>(op_idx)];
        int slot = -1;
        int placed_at = table.findFirstFit(op, estart, &slot);
        if (placed_at < 0) {
            // Forced placement: free the modulo row and take it.
            int t = std::max(estart,
                             prev[static_cast<size_t>(op_idx)] + 1);
            for (int i = 0; i < n; ++i) {
                int s = (*start)[static_cast<size_t>(i)];
                if (s >= 0 && s % ii == t % ii)
                    unschedule(i);
            }
            bool ok = table.tryReserve(op, t, &slot);
            vvsp_assert(ok, "forced placement failed at t=%d ii=%d", t,
                        ii);
            placed_at = t;
        }
        (*start)[static_cast<size_t>(op_idx)] = placed_at;
        slot_of[static_cast<size_t>(op_idx)] = slot;
        prev[static_cast<size_t>(op_idx)] = placed_at;
        {
            int r = rank_of[static_cast<size_t>(op_idx)];
            unplaced[static_cast<size_t>(r) / 64] &=
                ~(uint64_t{1} << (r % 64));
        }

        // Evict successors whose dependence the new placement breaks.
        for (int e : ddg.succEdges(op_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            int to = (*start)[static_cast<size_t>(edge.to)];
            if (edge.to == op_idx || to < 0)
                continue;
            if (to < placed_at + edge.latency - ii * edge.distance)
                unschedule(edge.to);
        }
        // Self-edges (loop-carried) must hold: lat <= ii * dist.
        for (int e : ddg.succEdges(op_idx)) {
            const DepEdge &edge = ddg.edges()[static_cast<size_t>(e)];
            if (edge.to == op_idx && edge.latency > ii * edge.distance)
                return false; // recurrence cannot fit this II.
        }
    }
}

BlockSchedule
ModuloScheduler::schedule(const std::vector<Operation> &ops,
                          int max_live_target) const
{
    const int n = static_cast<int>(ops.size());
    vvsp_assert(n > 0, "modulo scheduling an empty block");
    for (const auto &op : ops) {
        vvsp_assert(machine_.canExecute(op),
                    "%s cannot execute '%s' (recipe must lower it)",
                    machine_.name().c_str(), op.str().c_str());
    }

    stats_.bump("modulo_runs");
    DependenceGraph ddg(ops, machine_.latencyFn(), /*loop_carried=*/true);
    int mii = std::max(resourceMii(ops), ddg.recurrenceMii());

    // Static scheduling priority, shared by every II attempt.
    std::vector<int> by_priority(static_cast<size_t>(n));
    std::iota(by_priority.begin(), by_priority.end(), 0);
    std::stable_sort(by_priority.begin(), by_priority.end(),
                     [&ddg](int a, int b) {
                         return ddg.height(a) > ddg.height(b);
                     });

    auto build = [&](int ii,
                     const std::vector<int> &start) -> BlockSchedule {
        BlockSchedule result;
        result.ii = ii;
        result.placed.assign(static_cast<size_t>(n), PlacedOp{});
        int max_start = 0;
        for (int i = 0; i < n; ++i) {
            result.placed[static_cast<size_t>(i)] =
                PlacedOp{start[static_cast<size_t>(i)],
                         ops[static_cast<size_t>(i)].cluster, 0};
            max_start = std::max(max_start,
                                 start[static_cast<size_t>(i)]);
        }
        result.stages = max_start / ii + 1;
        result.length = max_start + 1;
        // Kernel-only code: the machine's predicated execution fills
        // and drains the pipeline from the same II instruction words
        // (prologue/epilogue cost cycles but no icache space).
        result.instructions = ii;
        result.maxLive = maxLivePerCluster(ops, result, machine_, ii);
        return result;
    };

    std::vector<int> start;
    BlockSchedule best;
    bool have_best = false;
    int pressure_retries = 0;
    for (int ii = mii; ii <= mii + 2 * n + 16; ++ii) {
        if (!attempt(ops, ddg, ii, by_priority, &start))
            continue;
        BlockSchedule cand = build(ii, start);
        if (max_live_target <= 0 || cand.maxLive <= max_live_target)
            return cand;
        if (!have_best || cand.maxLive < best.maxLive) {
            best = cand;
            have_best = true;
        }
        // A few slack steps often untangle the bin-packing enough
        // for value lifetimes to shorten; give up after that.
        if (++pressure_retries >= 6)
            return best;
    }
    if (have_best)
        return best;
    vvsp_panic("modulo scheduler found no II for %d ops on %s", n,
               machine_.name().c_str());
}

} // namespace vvsp
