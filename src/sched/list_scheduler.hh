/**
 * @file
 * Acyclic list scheduler.
 *
 * Classic height-priority, cycle-driven list scheduling against the
 * reservation table. Two modes:
 *  - wide: the full VLIW issue width of the clusters the ops are
 *    assigned to;
 *  - width1: the paper's sequential baseline, "using the full
 *    capabilities of the machine including predicated execution but
 *    limited to one operation per instruction" (Sec. 3.3), still
 *    filling load- and branch-delay slots.
 *
 * A single trailing branch (loop back edge or conditional exit) is
 * placed so that its delay slots overlap trailing operations:
 * the block ends 1 + delaySlots cycles after the branch issues.
 */

#ifndef VVSP_SCHED_LIST_SCHEDULER_HH
#define VVSP_SCHED_LIST_SCHEDULER_HH

#include <vector>

#include "arch/machine_model.hh"
#include "ir/dependence_graph.hh"
#include "obs/stats_registry.hh"
#include "sched/reservation_table.hh"
#include "sched/schedule.hh"

namespace vvsp
{

/** Acyclic scheduler for one block of operations. */
class ListScheduler
{
  public:
    ListScheduler(const MachineModel &machine, BankOfFn bank_of);

    /**
     * Schedule the ops (cluster fields already assigned). At most one
     * branch operation is allowed and is treated as the block
     * terminator.
     */
    BlockSchedule schedule(const std::vector<Operation> &ops,
                           bool width1) const;

  private:
    const MachineModel &machine_;
    BankOfFn bank_of_;
    /** Pooled across schedule() calls; reset() per block. */
    mutable ReservationTable table_;
    /** Pooled across schedule() calls; rebuilt in place per block. */
    mutable DependenceGraph ddg_;
    obs::StatsScope stats_;
};

} // namespace vvsp

#endif // VVSP_SCHED_LIST_SCHEDULER_HH
