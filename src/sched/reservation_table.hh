/**
 * @file
 * Cycle-by-cycle resource bookkeeping for the schedulers.
 *
 * Tracks, per cycle: issue-slot occupancy per cluster (with slot
 * capability matching), the machine-wide control slot for branches,
 * crossbar send/receive ports per cluster, and an optional global
 * width-1 constraint used for the paper's sequential baselines
 * ("limited to one operation per instruction"). For modulo
 * scheduling the table wraps modulo the initiation interval.
 *
 * The table is built for reuse on the scheduler hot path: all
 * per-cycle state lives in flat arrays whose strides are fixed once
 * from the MachineModel (no per-row allocation when the backtracking
 * modulo search touches a fresh cycle), the slot-selection policy is
 * precomputed into per-operation-class candidate orders, and reset()
 * rewinds the table for the next scheduling attempt without
 * releasing storage. Schedulers therefore keep one pooled table per
 * instance instead of constructing one per attempt.
 */

#ifndef VVSP_SCHED_RESERVATION_TABLE_HH
#define VVSP_SCHED_RESERVATION_TABLE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/machine_model.hh"

namespace vvsp
{

/** Maps a buffer id to its memory bank (from the function). */
using BankOfFn = std::function<int(int buffer)>;

/** Per-cycle resource reservations. */
class ReservationTable
{
  public:
    /**
     * @param machine the target datapath.
     * @param ii      initiation interval; 0 for acyclic scheduling.
     * @param bank_of resolves memory ops' buffers to banks.
     * @param width1  global one-operation-per-cycle mode.
     */
    ReservationTable(const MachineModel &machine, int ii,
                     BankOfFn bank_of, bool width1 = false);

    /**
     * Rewind every reservation and switch to a new interval/width
     * mode, keeping the allocated storage (the pooled-reuse path).
     */
    void reset(int ii, bool width1 = false);

    /**
     * Try to reserve resources for op at the given cycle; on success
     * records the reservation and returns the chosen slot in
     * *slot_out (-1 for control-slot ops). The op's cluster field
     * selects the cluster; Xfer ops also charge the destination
     * cluster's receive port.
     */
    bool tryReserve(const Operation &op, int cycle, int *slot_out);

    /**
     * Modulo tables only (ii > 0): earliest cycle in
     * [estart, estart + ii) where op fits, reserving it there and
     * returning the cycle (slot in *slot_out), or -1 when no modulo
     * row can take it. Exactly equivalent to probing tryReserve at
     * estart, estart+1, ... — each modulo row's availability is read
     * from per-resource row bitmaps, so the scan is a handful of
     * word operations instead of ii slot walks.
     */
    int findFirstFit(const Operation &op, int estart, int *slot_out);

    /** Release a previous reservation (modulo-scheduler eviction). */
    void release(const Operation &op, int cycle, int slot);

    /** Number of operations currently reserved at a cycle. */
    int opsAt(int cycle) const;

  private:
    int row(int cycle) const;
    void ensureRows(int rows);
    void resetModuloBits();

    /** Candidate slots for an op, in reservation-preference order. */
    const std::vector<int> &tryOrder(const Operation &op) const;

    /** Dense id of the op's candidate-slot class (tryOrder list). */
    int opClassId(const Operation &op) const;

    const MachineModel &machine_;
    BankOfFn bank_of_;
    int ii_;
    bool width1_;

    int clusters_ = 0;
    int slots_ = 0;  ///< issue slots per cluster.
    int stride_ = 0; ///< clusters * slots.
    int ports_ = 0;  ///< crossbar ports per cluster.

    /**
     * Precomputed slot orders. ALU ops prefer the least-specialized
     * free slot (so alternate-unit slots stay available); alternate
     * units take the first capable slot in index order.
     */
    std::vector<int> aluOrder_;
    std::vector<int> absDiffOrder_;
    std::vector<int> shiftOrder_;
    std::vector<int> multOrder_;
    std::vector<std::vector<int>> memOrder_; ///< by bank.
    std::vector<int> anyBankMemOrder_;       ///< memBank == -2 only.
    std::vector<int> anySlotOrder_;          ///< Xfer & friends.

    /**
     * The candidate-slot lists above, enumerated as dense classes:
     * classOrders_[c] aliases one of the order vectors, and
     * slotClasses_[s] lists every class whose order contains slot s.
     * findFirstFit masks are kept per class, not per slot.
     */
    int numClasses_ = 0;
    std::vector<const std::vector<int> *> classOrders_;
    std::vector<std::vector<int32_t>> slotClasses_;

    /** Flat per-row state; row r occupies [r*stride, (r+1)*stride). */
    std::vector<uint8_t> slotBusy_;  ///< rows x stride.
    std::vector<uint8_t> sends_;     ///< rows x clusters.
    std::vector<uint8_t> receives_;  ///< rows x clusters.
    std::vector<uint8_t> branchBusy_;///< rows.
    std::vector<int32_t> totalOps_;  ///< rows.
    int rows_ = 0;       ///< allocated row capacity.
    int rowsTouched_ = 0;///< high-water mark, bounds reset() work.

    /**
     * Modulo-mode row bitmaps, mirrored by tryReserve()/release()
     * when ii > 0: bit r set means modulo row r cannot supply the
     * resource. findFirstFit() reads the per-class combined mask
     * directly (ORing in crossbar saturation for transfers) instead
     * of probing rows one by one or re-ANDing per-slot maps.
     *
     * classBusyBits_ bit r is set for (class, cluster) exactly when
     * every candidate slot of that class is busy in modulo row r;
     * classFreeCnt_ holds the matching free-slot counts so the bit
     * can be maintained in O(classes-of-slot) on reserve/release.
     */
    int rowWords_ = 0; ///< 64-bit words per bitmap; 0 when ii == 0.
    std::vector<uint64_t> branchBits_;     ///< words.
    std::vector<uint64_t> sendFullBits_;   ///< clusters x words.
    std::vector<uint64_t> recvFullBits_;   ///< clusters x words.
    std::vector<uint64_t> classBusyBits_;  ///< (class,cluster) x words.
    std::vector<uint8_t> classFreeCnt_;    ///< (class,cluster) x ii.
    std::vector<uint64_t> scanScratch_;    ///< findFirstFit workspace.
};

} // namespace vvsp

#endif // VVSP_SCHED_RESERVATION_TABLE_HH
