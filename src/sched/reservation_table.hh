/**
 * @file
 * Cycle-by-cycle resource bookkeeping for the schedulers.
 *
 * Tracks, per cycle: issue-slot occupancy per cluster (with slot
 * capability matching), the machine-wide control slot for branches,
 * crossbar send/receive ports per cluster, and an optional global
 * width-1 constraint used for the paper's sequential baselines
 * ("limited to one operation per instruction"). For modulo
 * scheduling the table wraps modulo the initiation interval.
 */

#ifndef VVSP_SCHED_RESERVATION_TABLE_HH
#define VVSP_SCHED_RESERVATION_TABLE_HH

#include <functional>
#include <vector>

#include "arch/machine_model.hh"

namespace vvsp
{

/** Maps a buffer id to its memory bank (from the function). */
using BankOfFn = std::function<int(int buffer)>;

/** Per-cycle resource reservations. */
class ReservationTable
{
  public:
    /**
     * @param machine the target datapath.
     * @param ii      initiation interval; 0 for acyclic scheduling.
     * @param bank_of resolves memory ops' buffers to banks.
     * @param width1  global one-operation-per-cycle mode.
     */
    ReservationTable(const MachineModel &machine, int ii,
                     BankOfFn bank_of, bool width1 = false);

    /**
     * Try to reserve resources for op at the given cycle; on success
     * records the reservation and returns the chosen slot in
     * *slot_out (-1 for control-slot ops). The op's cluster field
     * selects the cluster; Xfer ops also charge the destination
     * cluster's receive port.
     */
    bool tryReserve(const Operation &op, int cycle, int *slot_out);

    /** Release a previous reservation (modulo-scheduler eviction). */
    void release(const Operation &op, int cycle, int slot);

    /** Number of operations currently reserved at a cycle. */
    int opsAt(int cycle) const;

  private:
    struct CycleState
    {
        /** slotBusy[cluster * slots + slot]. */
        std::vector<uint8_t> slotBusy;
        std::vector<uint8_t> sends;    ///< per-cluster crossbar sends.
        std::vector<uint8_t> receives; ///< per-cluster receives.
        bool branchBusy = false;
        int totalOps = 0;
    };

    CycleState &state(int cycle);
    const CycleState *stateIfAny(int cycle) const;
    int row(int cycle) const;

    bool slotCompatible(int slot, const Operation &op) const;

    const MachineModel &machine_;
    int ii_;
    BankOfFn bank_of_;
    bool width1_;
    std::vector<CycleState> rows_;
};

} // namespace vvsp

#endif // VVSP_SCHED_RESERVATION_TABLE_HH
