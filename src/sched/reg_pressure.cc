#include "sched/reg_pressure.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace vvsp
{

namespace
{

struct Lifetime
{
    int def = -1;      ///< issue cycle of the definition (-1: live-in).
    int last_use = -1; ///< latest issue cycle of a reader.
    int cluster = 0;
};

} // anonymous namespace

int
maxLivePerCluster(const std::vector<Operation> &ops,
                  const BlockSchedule &sched, const MachineModel &machine,
                  int ii)
{
    (void)machine;
    // (vreg, cluster) -> lifetime. A transferred value has separate
    // lifetimes in the sending and receiving register files.
    std::map<std::pair<Vreg, int>, Lifetime> lives;

    auto read = [&](Vreg r, int cluster, int cycle) {
        auto &lt = lives[{r, cluster}];
        lt.cluster = cluster;
        lt.last_use = std::max(lt.last_use, cycle);
    };

    const int n = static_cast<int>(ops.size());
    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[static_cast<size_t>(i)];
        const PlacedOp &p = sched.placed[static_cast<size_t>(i)];
        for (const auto &s : op.src) {
            if (s.isReg())
                read(s.reg, op.cluster, p.cycle);
        }
        if (op.pred.isReg())
            read(op.pred.reg, op.cluster, p.cycle);
        if (op.info().hasDst && op.dst != kNoVreg) {
            int home = op.op == Opcode::Xfer ? op.dstCluster
                                             : op.cluster;
            auto &lt = lives[{op.dst, home}];
            lt.cluster = home;
            if (lt.def < 0)
                lt.def = p.cycle;
            else
                lt.def = std::min(lt.def, p.cycle);
        }
    }

    int horizon = 1;
    for (int i = 0; i < n; ++i)
        horizon = std::max(horizon, sched.placed[static_cast<size_t>(
                                        i)].cycle + 2);

    int rows = ii > 0 ? ii : horizon;
    std::map<int, std::vector<int>> pressure; // cluster -> per-row.
    for (const auto &[key, lt] : lives) {
        int from = lt.def < 0 ? 0 : lt.def;
        int to = std::max(lt.last_use, from);
        // Live-in values with no recorded use still occupy a register
        // at their use cycle only (already covered by last_use).
        auto &rowvec = pressure[lt.cluster];
        if (rowvec.empty())
            rowvec.assign(static_cast<size_t>(rows), 0);
        for (int t = from; t <= to; ++t) {
            rowvec[static_cast<size_t>(ii > 0 ? t % ii
                                              : std::min(t, rows - 1))]++;
        }
    }

    int peak = 0;
    for (const auto &[cluster, rowvec] : pressure) {
        for (int v : rowvec)
            peak = std::max(peak, v);
    }
    return peak;
}

} // namespace vvsp
