#include "sched/reg_pressure.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/sched_arena.hh"

namespace vvsp
{

int
maxLivePerCluster(const std::vector<Operation> &ops,
                  const BlockSchedule &sched, const MachineModel &machine,
                  int ii)
{
    (void)machine;
    const int n = static_cast<int>(ops.size());
    if (n == 0)
        return 0;

    // A transferred value has separate lifetimes in the sending and
    // receiving register files, so lifetimes are keyed (vreg, cluster).
    // The keys are dense (vreg * clusters + cluster), so the whole
    // analysis runs on flat arena arrays instead of a std::map, and
    // pressure is accumulated with difference arrays: one lifetime
    // costs O(1) bookkeeping instead of O(lifetime length).
    Vreg max_reg = 0;
    int clusters = 0;
    bool any = false;
    for (const auto &op : ops) {
        clusters = std::max(clusters, op.cluster + 1);
        for (const auto &s : op.src) {
            if (s.isReg()) {
                max_reg = std::max(max_reg, s.reg);
                any = true;
            }
        }
        if (op.pred.isReg()) {
            max_reg = std::max(max_reg, op.pred.reg);
            any = true;
        }
        if (op.info().hasDst && op.dst != kNoVreg) {
            max_reg = std::max(max_reg, op.dst);
            any = true;
            if (op.op == Opcode::Xfer)
                clusters = std::max(clusters, op.dstCluster + 1);
        }
    }
    if (!any)
        return 0;

    const size_t keys = (static_cast<size_t>(max_reg) + 1) *
                        static_cast<size_t>(clusters);
    ArenaVec<int32_t> def_of;   // issue cycle of def; -1 = live-in.
    ArenaVec<int32_t> last_use; // latest reader cycle; -1 = none.
    ArenaVec<uint8_t> seen;
    ArenaVec<int32_t> touched;
    def_of->assign(keys, -1);
    last_use->assign(keys, -1);
    seen->assign(keys, 0);
    touched->clear();

    auto touch = [&](Vreg r, int cluster) -> size_t {
        size_t k = static_cast<size_t>(r) *
                       static_cast<size_t>(clusters) +
                   static_cast<size_t>(cluster);
        if (!(*seen)[k]) {
            (*seen)[k] = 1;
            touched->push_back(static_cast<int32_t>(k));
        }
        return k;
    };

    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[static_cast<size_t>(i)];
        const PlacedOp &p = sched.placed[static_cast<size_t>(i)];
        auto read = [&](Vreg r) {
            size_t k = touch(r, op.cluster);
            (*last_use)[k] = std::max((*last_use)[k], p.cycle);
        };
        for (const auto &s : op.src) {
            if (s.isReg())
                read(s.reg);
        }
        if (op.pred.isReg())
            read(op.pred.reg);
        if (op.info().hasDst && op.dst != kNoVreg) {
            int home = op.op == Opcode::Xfer ? op.dstCluster
                                             : op.cluster;
            size_t k = touch(op.dst, home);
            if ((*def_of)[k] < 0)
                (*def_of)[k] = p.cycle;
            else
                (*def_of)[k] = std::min((*def_of)[k], p.cycle);
        }
    }

    int horizon = 1;
    for (int i = 0; i < n; ++i)
        horizon = std::max(horizon, sched.placed[static_cast<size_t>(
                                        i)].cycle + 2);
    const int rows = ii > 0 ? ii : horizon;

    // Per cluster: a whole-row base count (full II wraps of long
    // modulo lifetimes) plus a difference array for partial ranges.
    ArenaVec<int32_t> diff; // clusters x (rows + 1).
    ArenaVec<int32_t> base; // clusters.
    diff->assign(static_cast<size_t>(clusters) *
                     static_cast<size_t>(rows + 1),
                 0);
    base->assign(static_cast<size_t>(clusters), 0);

    for (int32_t key : *touched) {
        size_t k = static_cast<size_t>(key);
        int cluster = static_cast<int>(
            k % static_cast<size_t>(clusters));
        int from = (*def_of)[k] < 0 ? 0 : (*def_of)[k];
        int to = std::max((*last_use)[k], from);
        int32_t *d = diff->data() +
                     static_cast<size_t>(cluster) *
                         static_cast<size_t>(rows + 1);
        if (ii > 0) {
            // Cycles [from, to] land on row t % ii: every complete
            // wrap adds 1 to all rows; the remainder covers a
            // circular range of rows starting at from % ii.
            int span = to - from + 1;
            (*base)[static_cast<size_t>(cluster)] += span / ii;
            int rem = span % ii;
            if (rem > 0) {
                int lo = from % ii;
                int hi = lo + rem;
                if (hi <= ii) {
                    d[lo]++;
                    d[hi]--;
                } else {
                    d[lo]++;
                    d[ii]--;
                    d[0]++;
                    d[hi - ii]--;
                }
            }
        } else {
            // Acyclic rows are cycles clamped to the last row.
            if (from < rows) {
                int hi = std::min(to, rows - 1);
                d[from]++;
                d[hi + 1]--;
            }
            int over_start = std::max(from, rows);
            if (to >= over_start) {
                int extra = to - over_start + 1;
                d[rows - 1] += extra;
                d[rows] -= extra;
            }
        }
    }

    int peak = 0;
    for (int c = 0; c < clusters; ++c) {
        const int32_t *d = diff->data() +
                           static_cast<size_t>(c) *
                               static_cast<size_t>(rows + 1);
        int running = (*base)[static_cast<size_t>(c)];
        for (int r = 0; r < rows; ++r) {
            running += d[r];
            peak = std::max(peak, running);
        }
    }
    return peak;
}

} // namespace vvsp
