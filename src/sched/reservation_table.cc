#include "sched/reservation_table.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sched/simd_bits.hh"
#include "support/logging.hh"

namespace vvsp
{

namespace
{

/** Alternate units on a slot; ALU ops avoid specialized slots. */
int
specialization(const SlotCaps &caps)
{
    return (caps.mult ? 1 : 0) + (caps.shift ? 1 : 0) +
           (caps.memBank != -1 ? 1 : 0);
}

} // anonymous namespace

ReservationTable::ReservationTable(const MachineModel &machine, int ii,
                                   BankOfFn bank_of, bool width1)
    : machine_(machine), bank_of_(std::move(bank_of)), ii_(ii),
      width1_(width1)
{
    clusters_ = machine_.clusters();
    slots_ = machine_.slotsPerCluster();
    stride_ = clusters_ * slots_;
    ports_ = machine_.crossbarPortsPerCluster();

    const auto &caps = machine_.slotCaps();
    // ALU selection: least-specialized free slot, ties by index -
    // walking a (specialization, index)-sorted list and taking the
    // first free slot reproduces the historical scan exactly.
    for (int s = 0; s < slots_; ++s) {
        const SlotCaps &c = caps[static_cast<size_t>(s)];
        if (c.alu)
            aluOrder_.push_back(s);
        if (c.absDiff)
            absDiffOrder_.push_back(s);
        if (c.shift)
            shiftOrder_.push_back(s);
        if (c.mult)
            multOrder_.push_back(s);
        anySlotOrder_.push_back(s);
    }
    auto by_specialization = [&caps](int a, int b) {
        int sa = specialization(caps[static_cast<size_t>(a)]);
        int sb = specialization(caps[static_cast<size_t>(b)]);
        if (sa != sb)
            return sa < sb;
        return a < b;
    };
    std::sort(aluOrder_.begin(), aluOrder_.end(), by_specialization);
    std::sort(absDiffOrder_.begin(), absDiffOrder_.end(),
              by_specialization);

    memOrder_.resize(static_cast<size_t>(
        std::max(1, machine_.memBanks())));
    for (size_t bank = 0; bank < memOrder_.size(); ++bank) {
        for (int s = 0; s < slots_; ++s) {
            int mb = caps[static_cast<size_t>(s)].memBank;
            if (mb == -2 || mb == static_cast<int>(bank))
                memOrder_[bank].push_back(s);
        }
    }
    for (int s = 0; s < slots_; ++s) {
        if (caps[static_cast<size_t>(s)].memBank == -2)
            anyBankMemOrder_.push_back(s);
    }

    // Enumerate the candidate-slot classes; ids must match
    // opClassId(). The aliased vectors are never resized after this
    // point, so the pointers stay valid for the table's lifetime.
    classOrders_ = {&aluOrder_, &absDiffOrder_, &shiftOrder_,
                    &multOrder_};
    for (const auto &bank_order : memOrder_)
        classOrders_.push_back(&bank_order);
    classOrders_.push_back(&anyBankMemOrder_);
    classOrders_.push_back(&anySlotOrder_);
    numClasses_ = static_cast<int>(classOrders_.size());
    slotClasses_.resize(static_cast<size_t>(slots_));
    for (int c = 0; c < numClasses_; ++c) {
        for (int s : *classOrders_[static_cast<size_t>(c)])
            slotClasses_[static_cast<size_t>(s)].push_back(c);
    }

    // Size the flat state once; acyclic tables grow geometrically.
    int initial_rows = ii_ > 0 ? ii_ : 64;
    ensureRows(initial_rows);
    resetModuloBits();
}

void
ReservationTable::resetModuloBits()
{
    if (ii_ <= 0) {
        rowWords_ = 0;
        return;
    }
    rowWords_ = (ii_ + 63) / 64;
    size_t words = static_cast<size_t>(rowWords_);
    branchBits_.assign(words, 0);
    sendFullBits_.assign(static_cast<size_t>(clusters_) * words, 0);
    recvFullBits_.assign(static_cast<size_t>(clusters_) * words, 0);
    classBusyBits_.assign(static_cast<size_t>(numClasses_) *
                              static_cast<size_t>(clusters_) * words,
                          0);
    classFreeCnt_.assign(static_cast<size_t>(numClasses_) *
                             static_cast<size_t>(clusters_) *
                             static_cast<size_t>(ii_),
                         0);
    for (int c = 0; c < numClasses_; ++c) {
        size_t class_size = classOrders_[static_cast<size_t>(c)]->size();
        if (class_size == 0) {
            // No candidate slots: every row is permanently blocked
            // (rows past ii are masked off by the scan tail anyway).
            std::fill(classBusyBits_.begin() +
                          static_cast<ptrdiff_t>(
                              static_cast<size_t>(c) *
                              static_cast<size_t>(clusters_) * words),
                      classBusyBits_.begin() +
                          static_cast<ptrdiff_t>(
                              static_cast<size_t>(c + 1) *
                              static_cast<size_t>(clusters_) * words),
                      ~uint64_t{0});
            continue;
        }
        size_t base = static_cast<size_t>(c) *
                      static_cast<size_t>(clusters_) *
                      static_cast<size_t>(ii_);
        std::fill(classFreeCnt_.begin() + static_cast<ptrdiff_t>(base),
                  classFreeCnt_.begin() +
                      static_cast<ptrdiff_t>(
                          base + static_cast<size_t>(clusters_) *
                                     static_cast<size_t>(ii_)),
                  static_cast<uint8_t>(class_size));
    }
    scanScratch_.resize(words);
}

void
ReservationTable::reset(int ii, bool width1)
{
    ii_ = ii;
    width1_ = width1;
    if (rowsTouched_ > 0) {
        size_t r = static_cast<size_t>(rowsTouched_);
        std::memset(slotBusy_.data(), 0,
                    r * static_cast<size_t>(stride_));
        std::memset(sends_.data(), 0,
                    r * static_cast<size_t>(clusters_));
        std::memset(receives_.data(), 0,
                    r * static_cast<size_t>(clusters_));
        std::memset(branchBusy_.data(), 0, r);
        std::memset(totalOps_.data(), 0, r * sizeof(int32_t));
    }
    rowsTouched_ = 0;
    if (ii_ > 0)
        ensureRows(ii_);
    resetModuloBits();
}

void
ReservationTable::ensureRows(int rows)
{
    if (rows <= rows_)
        return;
    int grown = std::max({rows, 2 * rows_, 64});
    slotBusy_.resize(static_cast<size_t>(grown) *
                         static_cast<size_t>(stride_),
                     0);
    sends_.resize(static_cast<size_t>(grown) *
                      static_cast<size_t>(clusters_),
                  0);
    receives_.resize(static_cast<size_t>(grown) *
                         static_cast<size_t>(clusters_),
                     0);
    branchBusy_.resize(static_cast<size_t>(grown), 0);
    totalOps_.resize(static_cast<size_t>(grown), 0);
    rows_ = grown;
}

int
ReservationTable::row(int cycle) const
{
    vvsp_assert(cycle >= 0, "negative cycle %d", cycle);
    return ii_ > 0 ? cycle % ii_ : cycle;
}

int
ReservationTable::opClassId(const Operation &op) const
{
    const int banks = static_cast<int>(memOrder_.size());
    switch (op.info().fuClass) {
      case FuClass::Alu:
        return op.op == Opcode::AbsDiff ? 1 : 0;
      case FuClass::Shift:
        return 2;
      case FuClass::Mult:
        return 3;
      case FuClass::Mem: {
        int bank = bank_of_ ? bank_of_(op.buffer) : 0;
        // Out-of-range banks are served only by any-bank LSU slots.
        if (bank < 0 || bank >= banks)
            return 4 + banks;
        return 4 + bank;
      }
      case FuClass::Xbar:
      case FuClass::Branch:
      case FuClass::None:
        break; // any slot can push to its port.
    }
    return numClasses_ - 1; // anySlotOrder_.
}

const std::vector<int> &
ReservationTable::tryOrder(const Operation &op) const
{
    return *classOrders_[static_cast<size_t>(opClassId(op))];
}

bool
ReservationTable::tryReserve(const Operation &op, int cycle,
                             int *slot_out)
{
    int r = row(cycle);
    ensureRows(r + 1);
    rowsTouched_ = std::max(rowsTouched_, r + 1);

    const int cluster = op.cluster;
    vvsp_assert(cluster >= 0 && cluster < clusters_,
                "op on cluster %d of %d", cluster, clusters_);

    int32_t &total = totalOps_[static_cast<size_t>(r)];
    if (width1_ && total >= 1)
        return false;

    if (op.info().isBranch) {
        uint8_t &busy = branchBusy_[static_cast<size_t>(r)];
        if (busy)
            return false;
        busy = 1;
        total++;
        if (rowWords_ > 0)
            branchBits_[static_cast<size_t>(r) / 64] |=
                uint64_t{1} << (r % 64);
        *slot_out = -1;
        return true;
    }

    uint8_t *send_row =
        sends_.data() + static_cast<size_t>(r) *
                            static_cast<size_t>(clusters_);
    uint8_t *recv_row =
        receives_.data() + static_cast<size_t>(r) *
                               static_cast<size_t>(clusters_);
    if (op.op == Opcode::Xfer) {
        if (send_row[static_cast<size_t>(cluster)] >= ports_)
            return false;
        if (recv_row[static_cast<size_t>(op.dstCluster)] >= ports_)
            return false;
    }

    uint8_t *busy_row =
        slotBusy_.data() + static_cast<size_t>(r) *
                               static_cast<size_t>(stride_) +
        static_cast<size_t>(cluster) * static_cast<size_t>(slots_);
    int chosen = -1;
    for (int s : tryOrder(op)) {
        if (!busy_row[static_cast<size_t>(s)]) {
            chosen = s;
            break;
        }
    }
    if (chosen < 0)
        return false;

    busy_row[static_cast<size_t>(chosen)] = 1;
    total++;
    if (op.op == Opcode::Xfer) {
        send_row[static_cast<size_t>(cluster)]++;
        recv_row[static_cast<size_t>(op.dstCluster)]++;
    }
    if (rowWords_ > 0) {
        uint64_t bit = uint64_t{1} << (r % 64);
        size_t w = static_cast<size_t>(r) / 64;
        size_t words = static_cast<size_t>(rowWords_);
        for (int32_t c : slotClasses_[static_cast<size_t>(chosen)]) {
            uint8_t &cnt = classFreeCnt_[
                (static_cast<size_t>(c) *
                     static_cast<size_t>(clusters_) +
                 static_cast<size_t>(cluster)) *
                    static_cast<size_t>(ii_) +
                static_cast<size_t>(r)];
            if (--cnt == 0)
                classBusyBits_[(static_cast<size_t>(c) *
                                    static_cast<size_t>(clusters_) +
                                static_cast<size_t>(cluster)) *
                                   words +
                               w] |= bit;
        }
        if (op.op == Opcode::Xfer) {
            if (send_row[static_cast<size_t>(cluster)] >= ports_)
                sendFullBits_[static_cast<size_t>(cluster) * words +
                              w] |= bit;
            if (recv_row[static_cast<size_t>(op.dstCluster)] >=
                ports_)
                recvFullBits_[static_cast<size_t>(op.dstCluster) *
                                  words +
                              w] |= bit;
        }
    }
    *slot_out = chosen;
    return true;
}

int
ReservationTable::findFirstFit(const Operation &op, int estart,
                               int *slot_out)
{
    vvsp_assert(ii_ > 0 && rowWords_ > 0,
                "findFirstFit needs a modulo table");
    vvsp_assert(estart >= 0, "negative estart %d", estart);
    if (width1_) {
        // width-1 gating is per-row op totals, not tracked in the
        // bitmaps; keep the exact probing scan for this rare mode.
        for (int t = estart; t < estart + ii_; ++t) {
            if (tryReserve(op, t, slot_out))
                return t;
        }
        return -1;
    }

    // Bitmap of modulo rows that cannot take op: the incrementally
    // maintained per-class mask (all candidate slots busy), plus for
    // transfers the rows where either crossbar side is saturated.
    uint64_t *busy = scanScratch_.data();
    const size_t words = static_cast<size_t>(rowWords_);
    if (op.info().isBranch) {
        std::memcpy(busy, branchBits_.data(),
                    words * sizeof(uint64_t));
    } else {
        const int cluster = op.cluster;
        const uint64_t *cls =
            classBusyBits_.data() +
            (static_cast<size_t>(opClassId(op)) *
                 static_cast<size_t>(clusters_) +
             static_cast<size_t>(cluster)) *
                words;
        if (op.op == Opcode::Xfer) {
            const uint64_t *snd =
                sendFullBits_.data() +
                static_cast<size_t>(cluster) * words;
            const uint64_t *rcv =
                recvFullBits_.data() +
                static_cast<size_t>(op.dstCluster) * words;
            simdbits::or3(busy, cls, snd, rcv, words);
        } else {
            std::memcpy(busy, cls, words * sizeof(uint64_t));
        }
    }
    // Rows past ii in the last word do not exist.
    if (ii_ % 64)
        busy[words - 1] |= ~((uint64_t{1} << (ii_ % 64)) - 1);

    // First free row circularly from estart's row; probing cycles
    // t = estart, estart+1, ... visits rows in exactly this order.
    const int r0 = row(estart);
    auto first_free = [&](int lo, int hi) -> int { // rows [lo, hi).
        for (int w = lo / 64; w <= (hi - 1) / 64; ++w) {
            uint64_t free = ~busy[w];
            if (w == lo / 64 && lo % 64)
                free &= ~uint64_t{0} << (lo % 64);
            int end = hi - w * 64;
            if (end < 64)
                free &= (uint64_t{1} << end) - 1;
            if (free)
                return w * 64 + std::countr_zero(free);
        }
        return -1;
    };
    int r = first_free(r0, ii_);
    if (r < 0 && r0 > 0)
        r = first_free(0, r0);
    if (r < 0)
        return -1;
    int t = estart + (r >= r0 ? r - r0 : r - r0 + ii_);
    bool ok = tryReserve(op, t, slot_out);
    vvsp_assert(ok, "free row %d rejected op at t=%d ii=%d", r, t,
                ii_);
    return t;
}

void
ReservationTable::release(const Operation &op, int cycle, int slot)
{
    int r = row(cycle);
    vvsp_assert(r < rowsTouched_, "release of untouched cycle %d",
                cycle);
    totalOps_[static_cast<size_t>(r)]--;
    uint64_t bit = uint64_t{1} << (r % 64);
    size_t w = static_cast<size_t>(r) / 64;
    size_t words = static_cast<size_t>(rowWords_);
    if (op.info().isBranch) {
        branchBusy_[static_cast<size_t>(r)] = 0;
        if (rowWords_ > 0)
            branchBits_[w] &= ~bit;
        return;
    }
    slotBusy_[static_cast<size_t>(r) * static_cast<size_t>(stride_) +
              static_cast<size_t>(op.cluster) *
                  static_cast<size_t>(slots_) +
              static_cast<size_t>(slot)] = 0;
    if (rowWords_ > 0) {
        for (int32_t c : slotClasses_[static_cast<size_t>(slot)]) {
            uint8_t &cnt = classFreeCnt_[
                (static_cast<size_t>(c) *
                     static_cast<size_t>(clusters_) +
                 static_cast<size_t>(op.cluster)) *
                    static_cast<size_t>(ii_) +
                static_cast<size_t>(r)];
            if (cnt++ == 0)
                classBusyBits_[(static_cast<size_t>(c) *
                                    static_cast<size_t>(clusters_) +
                                static_cast<size_t>(op.cluster)) *
                                   words +
                               w] &= ~bit;
        }
    }
    if (op.op == Opcode::Xfer) {
        sends_[static_cast<size_t>(r) *
                   static_cast<size_t>(clusters_) +
               static_cast<size_t>(op.cluster)]--;
        receives_[static_cast<size_t>(r) *
                      static_cast<size_t>(clusters_) +
                  static_cast<size_t>(op.dstCluster)]--;
        // The decrement leaves the count below ports_, so the
        // saturation bits always clear.
        if (rowWords_ > 0) {
            sendFullBits_[static_cast<size_t>(op.cluster) * words +
                          w] &= ~bit;
            recvFullBits_[static_cast<size_t>(op.dstCluster) * words +
                          w] &= ~bit;
        }
    }
}

int
ReservationTable::opsAt(int cycle) const
{
    int r = row(cycle);
    if (r >= rowsTouched_)
        return 0;
    return totalOps_[static_cast<size_t>(r)];
}

} // namespace vvsp
