#include "sched/reservation_table.hh"

#include "support/logging.hh"

namespace vvsp
{

ReservationTable::ReservationTable(const MachineModel &machine, int ii,
                                   BankOfFn bank_of, bool width1)
    : machine_(machine), ii_(ii), bank_of_(std::move(bank_of)),
      width1_(width1)
{
    if (ii_ > 0)
        rows_.resize(static_cast<size_t>(ii_));
}

int
ReservationTable::row(int cycle) const
{
    vvsp_assert(cycle >= 0, "negative cycle %d", cycle);
    return ii_ > 0 ? cycle % ii_ : cycle;
}

ReservationTable::CycleState &
ReservationTable::state(int cycle)
{
    size_t r = static_cast<size_t>(row(cycle));
    if (r >= rows_.size())
        rows_.resize(r + 1);
    CycleState &cs = rows_[r];
    size_t slots = static_cast<size_t>(machine_.clusters() *
                                       machine_.slotsPerCluster());
    if (cs.slotBusy.empty()) {
        cs.slotBusy.assign(slots, 0);
        cs.sends.assign(static_cast<size_t>(machine_.clusters()), 0);
        cs.receives.assign(static_cast<size_t>(machine_.clusters()), 0);
    }
    return cs;
}

const ReservationTable::CycleState *
ReservationTable::stateIfAny(int cycle) const
{
    size_t r = static_cast<size_t>(row(cycle));
    if (r >= rows_.size() || rows_[r].slotBusy.empty())
        return nullptr;
    return &rows_[r];
}

bool
ReservationTable::slotCompatible(int slot, const Operation &op) const
{
    const SlotCaps &caps =
        machine_.slotCaps()[static_cast<size_t>(slot)];
    switch (op.info().fuClass) {
      case FuClass::Alu:
        return op.op == Opcode::AbsDiff ? caps.absDiff : caps.alu;
      case FuClass::Shift:
        return caps.shift;
      case FuClass::Mult:
        return caps.mult;
      case FuClass::Mem: {
        if (caps.memBank == -1)
            return false;
        if (caps.memBank == -2)
            return true;
        int bank = bank_of_ ? bank_of_(op.buffer) : 0;
        return caps.memBank == bank;
      }
      case FuClass::Xbar:
        return true; // any slot can push a value to its port.
      case FuClass::Branch:
      case FuClass::None:
        return true;
    }
    return false;
}

bool
ReservationTable::tryReserve(const Operation &op, int cycle,
                             int *slot_out)
{
    CycleState &cs = state(cycle);
    const int slots = machine_.slotsPerCluster();
    const int cluster = op.cluster;
    vvsp_assert(cluster >= 0 && cluster < machine_.clusters(),
                "op on cluster %d of %d", cluster, machine_.clusters());

    if (width1_ && cs.totalOps >= 1)
        return false;

    if (op.info().isBranch) {
        if (cs.branchBusy)
            return false;
        cs.branchBusy = true;
        cs.totalOps++;
        *slot_out = -1;
        return true;
    }

    if (op.op == Opcode::Xfer) {
        int ports = machine_.crossbarPortsPerCluster();
        if (cs.sends[static_cast<size_t>(cluster)] >= ports)
            return false;
        if (cs.receives[static_cast<size_t>(op.dstCluster)] >= ports)
            return false;
    }

    // ALU ops prefer the least-specialized free slot so the
    // alternate-unit slots stay available for the operations that
    // need them; alternate-unit ops are essentially slot-bound.
    int chosen = -1;
    int chosen_specialization = 99;
    for (int s = 0; s < slots; ++s) {
        const SlotCaps &caps =
            machine_.slotCaps()[static_cast<size_t>(s)];
        if (cs.slotBusy[static_cast<size_t>(cluster * slots + s)])
            continue;
        if (!slotCompatible(s, op))
            continue;
        int specialization = (caps.mult ? 1 : 0) +
                             (caps.shift ? 1 : 0) +
                             (caps.memBank != -1 ? 1 : 0);
        if (op.info().fuClass != FuClass::Alu) {
            chosen = s;
            break;
        }
        if (specialization < chosen_specialization) {
            chosen = s;
            chosen_specialization = specialization;
        }
    }
    if (chosen < 0)
        return false;

    cs.slotBusy[static_cast<size_t>(cluster * slots + chosen)] = 1;
    cs.totalOps++;
    if (op.op == Opcode::Xfer) {
        cs.sends[static_cast<size_t>(cluster)]++;
        cs.receives[static_cast<size_t>(op.dstCluster)]++;
    }
    *slot_out = chosen;
    return true;
}

void
ReservationTable::release(const Operation &op, int cycle, int slot)
{
    CycleState &cs = state(cycle);
    cs.totalOps--;
    if (op.info().isBranch) {
        cs.branchBusy = false;
        return;
    }
    const int slots = machine_.slotsPerCluster();
    cs.slotBusy[static_cast<size_t>(op.cluster * slots + slot)] = 0;
    if (op.op == Opcode::Xfer) {
        cs.sends[static_cast<size_t>(op.cluster)]--;
        cs.receives[static_cast<size_t>(op.dstCluster)]--;
    }
}

int
ReservationTable::opsAt(int cycle) const
{
    const CycleState *cs = stateIfAny(cycle);
    return cs ? cs->totalOps : 0;
}

} // namespace vvsp
