#include "sched/schedule.hh"

#include <sstream>

#include "support/logging.hh"

namespace vvsp
{

double
BlockSchedule::loopCycles(double trips) const
{
    if (trips <= 0)
        return 0.0;
    if (isModulo()) {
        // Prologue fill + one initiation per iteration + drain.
        return prologueCycles() + static_cast<double>(ii) * trips +
               epilogueCycles();
    }
    return static_cast<double>(length) * trips;
}

std::string
BlockSchedule::str() const
{
    std::ostringstream os;
    if (isModulo()) {
        os << "modulo: II=" << ii << " stages=" << stages
           << " instrs=" << instructions << " maxLive=" << maxLive;
    } else {
        os << "acyclic: len=" << length << " instrs=" << instructions
           << " maxLive=" << maxLive;
    }
    return os.str();
}

} // namespace vvsp
