#include "arch/datapath_config.hh"

#include "support/logging.hh"

namespace vvsp
{

void
DatapathConfig::validate() const
{
    if (clusters < 1)
        vvsp_fatal("%s: needs at least one cluster", name.c_str());
    if (cluster.issueSlots < 1)
        vvsp_fatal("%s: cluster needs at least one issue slot",
                   name.c_str());
    if (cluster.regFilePorts < 3 * cluster.issueSlots) {
        vvsp_fatal("%s: %d issue slots need %d register-file ports, "
                   "only %d provided",
                   name.c_str(), cluster.issueSlots,
                   3 * cluster.issueSlots, cluster.regFilePorts);
    }
    if (cluster.numAlus < 1)
        vvsp_fatal("%s: cluster needs at least one ALU", name.c_str());
    if (cluster.localMemBytes % cluster.memBanks != 0) {
        vvsp_fatal("%s: %d B of local memory not divisible into %d banks",
                   name.c_str(), cluster.localMemBytes, cluster.memBanks);
    }
    if (cluster.localMemBytes / cluster.memBanks < cluster.memModuleBytes) {
        vvsp_fatal("%s: memory bank smaller than its %d-byte module",
                   name.c_str(), cluster.memModuleBytes);
    }
    if (pipelineStages != 4 && pipelineStages != 5)
        vvsp_fatal("%s: only 4- and 5-stage pipelines are modeled",
                   name.c_str());
    if (multiplier == MultiplierKind::Mul16x16Pipelined &&
        pipelineStages != 5) {
        vvsp_fatal("%s: the 2-stage 16x16 multiplier requires the "
                   "5-stage pipeline (Table 2)", name.c_str());
    }
    if (multiplier == MultiplierKind::Mul16x16Pipelined &&
        multiplyStages != 2) {
        vvsp_fatal("%s: the 16x16 multiplier is a 2-stage design",
                   name.c_str());
    }
    if (multiplyStages < 1 || multiplyStages > 2)
        vvsp_fatal("%s: only 1- and 2-stage multipliers are modeled",
                   name.c_str());
    if (crossbarPortsPerCluster < 1)
        vvsp_fatal("%s: cluster needs a crossbar port", name.c_str());
    if (icacheInstructions < 16)
        vvsp_fatal("%s: icache of %d instructions is too small",
                   name.c_str(), icacheInstructions);
}

} // namespace vvsp
