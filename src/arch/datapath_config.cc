#include "arch/datapath_config.hh"

#include "support/logging.hh"

namespace vvsp
{

std::string
DatapathConfig::validationError() const
{
    if (clusters < 1)
        return format("%s: needs at least one cluster", name.c_str());
    if (cluster.issueSlots < 1) {
        return format("%s: cluster needs at least one issue slot",
                      name.c_str());
    }
    if (cluster.regFilePorts < 3 * cluster.issueSlots) {
        return format("%s: %d issue slots need %d register-file "
                      "ports, only %d provided",
                      name.c_str(), cluster.issueSlots,
                      3 * cluster.issueSlots, cluster.regFilePorts);
    }
    if (cluster.numAlus < 1) {
        return format("%s: cluster needs at least one ALU",
                      name.c_str());
    }
    if (cluster.memBanks < 1) {
        return format("%s: cluster needs at least one memory bank",
                      name.c_str());
    }
    if (cluster.localMemBytes % cluster.memBanks != 0) {
        return format("%s: %d B of local memory not divisible into "
                      "%d banks",
                      name.c_str(), cluster.localMemBytes,
                      cluster.memBanks);
    }
    if (cluster.localMemBytes / cluster.memBanks <
        cluster.memModuleBytes) {
        return format("%s: memory bank smaller than its %d-byte "
                      "module",
                      name.c_str(), cluster.memModuleBytes);
    }
    if (pipelineStages != 4 && pipelineStages != 5) {
        return format("%s: only 4- and 5-stage pipelines are modeled",
                      name.c_str());
    }
    if (multiplier == MultiplierKind::Mul16x16Pipelined &&
        pipelineStages != 5) {
        return format("%s: the 2-stage 16x16 multiplier requires the "
                      "5-stage pipeline (Table 2)",
                      name.c_str());
    }
    if (multiplier == MultiplierKind::Mul16x16Pipelined &&
        multiplyStages != 2) {
        return format("%s: the 16x16 multiplier is a 2-stage design",
                      name.c_str());
    }
    if (multiplyStages < 1 || multiplyStages > 2) {
        return format("%s: only 1- and 2-stage multipliers are "
                      "modeled",
                      name.c_str());
    }
    if (crossbarPortsPerCluster < 1) {
        return format("%s: cluster needs a crossbar port",
                      name.c_str());
    }
    if (icacheInstructions < 16) {
        return format("%s: icache of %d instructions is too small",
                      name.c_str(), icacheInstructions);
    }
    return "";
}

void
DatapathConfig::validate() const
{
    std::string err = validationError();
    if (!err.empty())
        vvsp_fatal("%s", err.c_str());
}

} // namespace vvsp
