#include "arch/models.hh"

#include "arch/model_registry.hh"
#include "support/logging.hh"

namespace vvsp
{
namespace models
{

DatapathConfig
i4c8s4()
{
    // The DatapathConfig/ClusterConfig field defaults *are* the
    // paper's initial machine; every other model derives from it.
    DatapathConfig cfg;
    cfg.name = "I4C8S4";
    cfg.validate();
    return cfg;
}

DatapathConfig
i4c8s4c()
{
    DatapathConfig cfg = i4c8s4();
    cfg.name = "I4C8S4C";
    cfg.addressing = AddressingModes::Complex;
    cfg.validate();
    return cfg;
}

DatapathConfig
i4c8s5()
{
    DatapathConfig cfg = i4c8s4();
    cfg.name = "I4C8S5";
    cfg.pipelineStages = 5;
    cfg.addressing = AddressingModes::Complex;
    cfg.validate();
    return cfg;
}

DatapathConfig
i2c16s4()
{
    DatapathConfig cfg = i4c8s4();
    cfg.name = "I2C16S4";
    cfg.clusters = 16;
    cfg.cluster.issueSlots = 2;
    cfg.cluster.numAlus = 2;
    cfg.cluster.numLoadStoreUnits = 2; // one per slot, specific bank.
    cfg.cluster.registers = 64;
    cfg.cluster.regFilePorts = 6;
    cfg.cluster.localMemBytes = 16 * 1024;
    cfg.cluster.memBanks = 2; // two separate 8 KB memories.
    cfg.cluster.memModuleBytes = 512; // smaller, faster modules.
    cfg.multiplyStages = 2; // must be pipelined at this clock rate.
    cfg.crossbarPortsPerCluster = 1; // 16x16 switch.
    cfg.icacheInstructions = 512;
    cfg.validate();
    return cfg;
}

DatapathConfig
i2c16s5()
{
    DatapathConfig cfg = i2c16s4();
    cfg.name = "I2C16S5";
    cfg.pipelineStages = 5;
    cfg.addressing = AddressingModes::Complex;
    cfg.cluster.memBanks = 1; // single 16 KB memory...
    cfg.cluster.fastMemoryCell = true; // ...with the larger fast cell.
    // One port on the unified memory: 16 load/store units machine-wide
    // ("doubled ... in the I2C16S5 model and quadrupled in the
    // I2C16S4 model", Sec. 3.4.1).
    cfg.cluster.numLoadStoreUnits = 1;
    cfg.validate();
    return cfg;
}

DatapathConfig
i4c8s5m16()
{
    DatapathConfig cfg = i4c8s5();
    cfg.name = "I4C8S5M16";
    cfg.multiplier = MultiplierKind::Mul16x16Pipelined;
    cfg.multiplyStages = 2;
    cfg.validate();
    return cfg;
}

DatapathConfig
i2c16s5m16()
{
    DatapathConfig cfg = i2c16s5();
    cfg.name = "I2C16S5M16";
    cfg.multiplier = MultiplierKind::Mul16x16Pipelined;
    cfg.multiplyStages = 2;
    cfg.validate();
    return cfg;
}

DatapathConfig
withDualLoadStore(DatapathConfig base)
{
    base.name += "+2LS";
    base.cluster.numLoadStoreUnits += 1;
    base.cluster.memPortsPerBank = 2;
    base.validate();
    return base;
}

DatapathConfig
withAbsDiff(DatapathConfig base)
{
    base.name += "+AD";
    base.cluster.hasAbsDiff = true;
    base.validate();
    return base;
}

std::vector<DatapathConfig>
table1Models()
{
    return {i4c8s4(), i4c8s4c(), i4c8s5(), i2c16s4(), i2c16s5()};
}

std::vector<DatapathConfig>
table2Models()
{
    return {i4c8s4(), i4c8s5(), i4c8s5m16(), i2c16s5(), i2c16s5m16()};
}

DatapathConfig
byName(const std::string &name)
{
    // The registry owns the names; a miss is fatal with the list of
    // registered models instead of a bare abort.
    return ModelRegistry::instance().get(name);
}

} // namespace models
} // namespace vvsp
