/**
 * @file
 * Named registry of datapath models.
 *
 * The seven paper machines (Sec. 3.2) are registered base configs;
 * every consumer — the vvsp CLI driver, the experiment specs, the
 * design-space explorer, tests — resolves models by name through
 * this one table, so adding a machine (or loading one from JSON)
 * makes it available everywhere at once.
 *
 * Name grammar: a registered base name, optionally followed by
 * derivation suffixes in any order:
 *   +2LS  second load/store unit on dual-ported memory (Sec. 3.4.1)
 *   +AD   absolute-difference ALU op enabled
 * e.g. "I4C8S4+2LS". A `--machine` CLI argument may instead be a
 * path to a JSON machine file (see arch/config_json.hh); resolve()
 * accepts both.
 */

#ifndef VVSP_ARCH_MODEL_REGISTRY_HH
#define VVSP_ARCH_MODEL_REGISTRY_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "arch/datapath_config.hh"

namespace vvsp
{

/** Registry of named machines; the registry owns the names. */
class ModelRegistry
{
  public:
    struct Entry
    {
        std::string name;
        std::string summary;
        std::function<DatapathConfig()> make;
    };

    /** The process-wide registry, pre-seeded with the paper models. */
    static ModelRegistry &instance();

    /**
     * Register a base model. The registry stamps `name` onto every
     * config the factory hands out, so factories need not repeat it.
     * Re-registering a name replaces the entry.
     */
    void add(const std::string &name, const std::string &summary,
             std::function<DatapathConfig()> make);

    /** Registered entries in registration order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Registered base names in registration order. */
    std::vector<std::string> names() const;

    /** "I4C8S4, I4C8S4C, ..." — for error messages and `vvsp list`. */
    std::string namesLine() const;

    /**
     * Resolve a model name, including +2LS/+AD derivation suffixes
     * on any base name; nullopt when the base name is unknown or a
     * suffix is unrecognized.
     */
    std::optional<DatapathConfig>
    find(const std::string &name) const;

    /**
     * find(), but a miss is a user error: fatal() with the list of
     * registered names.
     */
    DatapathConfig get(const std::string &name) const;

    /**
     * Resolve a CLI machine argument: a path to a JSON machine file
     * (anything containing a path separator or ending in ".json"),
     * or a registered model name. Returns nullopt and fills `error`
     * with a diagnostic that includes the registered names on a
     * name miss.
     */
    std::optional<DatapathConfig>
    resolve(const std::string &name_or_path,
            std::string *error) const;

  private:
    ModelRegistry();

    std::vector<Entry> entries_;
};

} // namespace vvsp

#endif // VVSP_ARCH_MODEL_REGISTRY_HH
