/**
 * @file
 * The seven candidate datapath models evaluated in the paper
 * (Sec. 3.2, Tables 1-2), plus the dual-load/store ablation of
 * Sec. 3.4.1.
 *
 * Naming: I<slots per cluster>C<clusters>S<pipeline stages>, with
 * suffix C for complex addressing folded into the memory stage and
 * M16 for the 16x16 pipelined multiplier.
 */

#ifndef VVSP_ARCH_MODELS_HH
#define VVSP_ARCH_MODELS_HH

#include <string>
#include <vector>

#include "arch/datapath_config.hh"

namespace vvsp
{
namespace models
{

/** 8 clusters x 4 slots, 4-stage, simple addressing (initial model). */
DatapathConfig i4c8s4();

/** I4C8S4 with indexed/base-disp addressing folded into the memory
 *  stage (severe cycle-time cost). */
DatapathConfig i4c8s4c();

/** I4C8S4 with a 5th (MEM) stage: complex addressing, 1-cycle
 *  load-use delay, 4 extra bypass paths. */
DatapathConfig i4c8s5();

/** 16 clusters x 2 slots, 4-stage, two 8 KB banks, 6-ported 64-entry
 *  register file, 16x16 crossbar, ~30% faster clock. */
DatapathConfig i2c16s4();

/** 16-cluster model with a 5-stage pipeline and a single 16 KB
 *  memory using the larger speed-binned cell. */
DatapathConfig i2c16s5();

/** I4C8S5 with 16-bit 2-stage multipliers (Table 2). */
DatapathConfig i4c8s5m16();

/** I2C16S5 with 16-bit 2-stage multipliers (Table 2). */
DatapathConfig i2c16s5m16();

/** Sec. 3.4.1 ablation: I4C8* with 2 load/store units on a
 *  dual-ported memory. */
DatapathConfig withDualLoadStore(DatapathConfig base);

/** Copy of a model with the absolute-difference ALU enabled. */
DatapathConfig withAbsDiff(DatapathConfig base);

/** The five models of Table 1, in column order. */
std::vector<DatapathConfig> table1Models();

/** The five models of Table 2, in column order. */
std::vector<DatapathConfig> table2Models();

/**
 * Look up any named model through the ModelRegistry (including
 * derivation suffixes, e.g. "I4C8S4+2LS"); fatal() with the list of
 * registered names on a miss. See arch/model_registry.hh.
 */
DatapathConfig byName(const std::string &name);

} // namespace models
} // namespace vvsp

#endif // VVSP_ARCH_MODELS_HH
