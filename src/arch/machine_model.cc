#include "arch/machine_model.hh"

#include "support/logging.hh"

namespace vvsp
{

MachineModel::MachineModel(DatapathConfig cfg)
    : cfg_(std::move(cfg))
{
    cfg_.validate();
    const ClusterConfig &cl = cfg_.cluster;
    slots_.assign(static_cast<size_t>(cl.issueSlots), SlotCaps{});

    // Alternate units are tied to specific slots, round-robin:
    // multipliers first, then shifters, then load/store units.
    // I4C8*: mult->slot0, shift->slot1, LSU->slot2 (paper Fig 1);
    // I2C16S4: slot0 = ALU/mult/LSU(bank0), slot1 = ALU/shift/
    // LSU(bank1) (Sec. 3.2).
    int next = 0;
    for (int u = 0; u < cl.numMultipliers; ++u)
        slots_[static_cast<size_t>(next++ % cl.issueSlots)].mult = true;
    for (int u = 0; u < cl.numShifters; ++u)
        slots_[static_cast<size_t>(next++ % cl.issueSlots)].shift = true;
    for (int u = 0; u < cl.numLoadStoreUnits; ++u) {
        int slot = next++ % cl.issueSlots;
        int bank = cl.memBanks > 1 ? u % cl.memBanks : -2;
        vvsp_assert(slots_[static_cast<size_t>(slot)].memBank == -1,
                    "%s: two load/store units on slot %d",
                    cfg_.name.c_str(), slot);
        slots_[static_cast<size_t>(slot)].memBank = bank;
    }
    if (cl.hasAbsDiff) {
        // The abs-diff capability is visible from every issue slot
        // (Table 1's blocked "+spec op" rows need more than one
        // |a-b| per cycle); the area estimator still prices it as
        // the paper does (one ALU doubling), and the clock estimator
        // adds its 2 gate delays to the ALU path.
        for (auto &slot : slots_)
            slot.absDiff = slot.alu;
    }
}

bool
MachineModel::canExecute(const Operation &op) const
{
    switch (op.op) {
      case Opcode::AbsDiff:
        return cfg_.cluster.hasAbsDiff;
      case Opcode::Mul16Lo:
      case Opcode::Mul16Hi:
        return hasMul16();
      case Opcode::Load:
      case Opcode::Store:
        return addressingLegal(op);
      default:
        return true;
    }
}

int
MachineModel::addressComponents(const Operation &op)
{
    vvsp_assert(op.info().isMemory, "addressComponents of '%s'",
                op.str().c_str());
    size_t base = op.op == Opcode::Load ? 0 : 1;
    const Operand &a = op.src[base];
    const Operand &b = op.src[base + 1];
    int regs = (a.isReg() ? 1 : 0) + (b.isReg() ? 1 : 0);
    int imms = (a.isImm() && a.imm != 0 ? 1 : 0) +
               (b.isImm() && b.imm != 0 ? 1 : 0);
    if (regs == 0)
        return 0; // direct (immediates fold into one literal).
    if (regs == 1 && imms == 0)
        return 1; // register-indirect.
    return 2;     // indexed or base-displacement.
}

bool
MachineModel::addressingLegal(const Operation &op) const
{
    return addressComponents(op) <= 1 || complexAddressing();
}

int
MachineModel::latency(const Operation &op) const
{
    switch (op.op) {
      case Opcode::Load:
        return 1 + loadUseDelay();
      case Opcode::Mul8:
      case Opcode::MulU8:
      case Opcode::MulUU8:
      case Opcode::Mul16Lo:
      case Opcode::Mul16Hi:
        return cfg_.multiplyStages;
      case Opcode::Xfer:
        return 1;
      default:
        return 1;
    }
}

LatencyFn
MachineModel::latencyFn() const
{
    return [this](const Operation &op) { return latency(op); };
}

bool
MachineModel::slotAllows(int slot, const Operation &op) const
{
    vvsp_assert(slot >= 0 && slot < slotsPerCluster(), "bad slot %d",
                slot);
    const SlotCaps &caps = slots_[static_cast<size_t>(slot)];
    switch (op.info().fuClass) {
      case FuClass::Alu:
        if (op.op == Opcode::AbsDiff)
            return caps.absDiff;
        return caps.alu;
      case FuClass::Shift:
        return caps.shift;
      case FuClass::Mult:
        return caps.mult;
      case FuClass::Mem:
        // Bank binding against the op's buffer is enforced by the
        // reservation table; the capability here is "has an LSU".
        return caps.memBank != -1;
      case FuClass::Xbar:
      case FuClass::Branch:
        // Crossbar transfers consume the sending slot; branches use
        // the machine-wide control slot (any cluster slot position).
        return true;
      case FuClass::None:
        return true;
    }
    return false;
}

} // namespace vvsp
