#include "arch/model_registry.hh"

#include "arch/config_json.hh"
#include "arch/models.hh"
#include "support/logging.hh"

namespace vvsp
{

ModelRegistry::ModelRegistry()
{
    add("I4C8S4",
        "8 clusters x 4 slots, 4-stage, simple addressing (initial "
        "model)",
        models::i4c8s4);
    add("I4C8S4C",
        "I4C8S4 with complex addressing folded into the memory stage",
        models::i4c8s4c);
    add("I4C8S5",
        "I4C8S4 with a 5th (MEM) stage: complex addressing, 1-cycle "
        "load-use delay",
        models::i4c8s5);
    add("I2C16S4",
        "16 clusters x 2 slots, 4-stage, two 8 KB banks, ~30% faster "
        "clock",
        models::i2c16s4);
    add("I2C16S5",
        "16-cluster model, 5-stage pipeline, single 16 KB fast-cell "
        "memory",
        models::i2c16s5);
    add("I4C8S5M16", "I4C8S5 with 16-bit 2-stage multipliers",
        models::i4c8s5m16);
    add("I2C16S5M16", "I2C16S5 with 16-bit 2-stage multipliers",
        models::i2c16s5m16);
}

ModelRegistry &
ModelRegistry::instance()
{
    static ModelRegistry registry;
    return registry;
}

void
ModelRegistry::add(const std::string &name,
                   const std::string &summary,
                   std::function<DatapathConfig()> make)
{
    for (Entry &e : entries_) {
        if (e.name == name) {
            e.summary = summary;
            e.make = std::move(make);
            return;
        }
    }
    entries_.push_back({name, summary, std::move(make)});
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

std::string
ModelRegistry::namesLine() const
{
    std::string out;
    for (const Entry &e : entries_) {
        if (!out.empty())
            out += ", ";
        out += e.name;
    }
    return out;
}

std::optional<DatapathConfig>
ModelRegistry::find(const std::string &name) const
{
    // "BASE+SUF+SUF": split on '+'.
    std::vector<std::string> suffixes;
    size_t plus = name.find('+');
    std::string base = name.substr(0, plus);
    while (plus != std::string::npos) {
        size_t next = name.find('+', plus + 1);
        suffixes.push_back(name.substr(
            plus + 1,
            next == std::string::npos ? next : next - plus - 1));
        plus = next;
    }

    for (const Entry &e : entries_) {
        if (e.name != base)
            continue;
        DatapathConfig cfg = e.make();
        cfg.name = e.name; // the registry owns the name.
        for (const std::string &s : suffixes) {
            if (s == "2LS")
                cfg = models::withDualLoadStore(std::move(cfg));
            else if (s == "AD")
                cfg = models::withAbsDiff(std::move(cfg));
            else
                return std::nullopt;
        }
        return cfg;
    }
    return std::nullopt;
}

DatapathConfig
ModelRegistry::get(const std::string &name) const
{
    std::optional<DatapathConfig> cfg = find(name);
    if (!cfg) {
        vvsp_fatal("unknown datapath model '%s' (registered models: "
                   "%s; derivation suffixes: +2LS, +AD)",
                   name.c_str(), namesLine().c_str());
    }
    return *cfg;
}

std::optional<DatapathConfig>
ModelRegistry::resolve(const std::string &name_or_path,
                       std::string *error) const
{
    bool looks_like_path =
        name_or_path.find('/') != std::string::npos ||
        name_or_path.find('\\') != std::string::npos ||
        (name_or_path.size() > 5 &&
         name_or_path.rfind(".json") == name_or_path.size() - 5);
    if (looks_like_path)
        return loadMachineFile(name_or_path, error);

    std::optional<DatapathConfig> cfg = find(name_or_path);
    if (!cfg && error) {
        *error = format("unknown datapath model '%s' (registered "
                        "models: %s; derivation suffixes: +2LS, +AD; "
                        "or pass a .json machine file)",
                        name_or_path.c_str(), namesLine().c_str());
    }
    return cfg;
}

} // namespace vvsp
