/**
 * @file
 * JSON (de)serialization of DatapathConfig.
 *
 * Machines are data: any config can be written out as JSON, edited,
 * and fed back through `--machine foo.json` — flowing through the
 * same validation, experiment pipeline, and content-addressed cache
 * keys as the built-in models. The canonical serialized form (fixed
 * field order, shortest round-trip number formatting, display name
 * excluded) is the machine half of every experiment cache key, so a
 * machine loaded from a file and an identically-parameterized C++
 * model share cache entries.
 */

#ifndef VVSP_ARCH_CONFIG_JSON_HH
#define VVSP_ARCH_CONFIG_JSON_HH

#include <optional>
#include <string>

#include "arch/datapath_config.hh"

namespace vvsp
{

/**
 * Serialize a config as a human-editable JSON document (two-space
 * indent, trailing newline). Every field is written, so the output
 * doubles as a template for hand-written machines.
 */
std::string configToJson(const DatapathConfig &cfg);

/**
 * The canonical machine key: a compact, single-line serialization of
 * every architectural field in fixed order, excluding the display
 * name (two differently-named models with the same parameters are
 * the same machine to the pipeline). Parse + re-serialize is a
 * fixed point, so disk-cache keys derived from it are stable across
 * a JSON round trip.
 */
std::string canonicalMachineKey(const DatapathConfig &cfg);

/**
 * Parse a config from JSON text. Fields omitted from the document
 * keep the DatapathConfig defaults (the I4C8S4 base machine), so a
 * machine file only needs to state its differences. Unknown keys,
 * malformed JSON, wrong-typed values, and configs that fail
 * DatapathConfig::validationError() are rejected: returns nullopt
 * and fills `error`.
 *
 * `fallback_name` names the machine when the document has no "name"
 * member (e.g. the file's basename).
 */
std::optional<DatapathConfig>
configFromJson(const std::string &text, std::string *error,
               const std::string &fallback_name = "custom");

/** configFromJson() over a file's contents; IO errors land in `error`. */
std::optional<DatapathConfig>
loadMachineFile(const std::string &path, std::string *error);

} // namespace vvsp

#endif // VVSP_ARCH_CONFIG_JSON_HH
