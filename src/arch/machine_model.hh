/**
 * @file
 * Scheduler-facing view of a datapath configuration: issue-slot
 * capabilities, operation latencies, addressing legality, and
 * resource budgets.
 *
 * Slot capabilities encode the paper's cluster organization: every
 * slot drives an ALU, and each alternate unit (multiplier, shifter,
 * load/store unit) is tied to one specific slot ("each set of 3
 * register-file ports supports one ALU and up to one alternate
 * function"). On the 2-slot clusters each load/store unit serves one
 * specific memory bank.
 */

#ifndef VVSP_ARCH_MACHINE_MODEL_HH
#define VVSP_ARCH_MACHINE_MODEL_HH

#include <string>
#include <vector>

#include "arch/datapath_config.hh"
#include "ir/dependence_graph.hh"
#include "ir/operation.hh"

namespace vvsp
{

/** What one issue slot can do in a cycle. */
struct SlotCaps
{
    bool alu = true;      ///< every slot drives an ALU.
    bool absDiff = false; ///< this slot's ALU has the special op.
    bool mult = false;
    bool shift = false;
    /** -1: no load/store unit; -2: LSU reaching any bank;
     *  >= 0: LSU tied to this bank. */
    int memBank = -1;
};

/** Resource/latency model of one datapath for the schedulers. */
class MachineModel
{
  public:
    explicit MachineModel(DatapathConfig cfg);

    const DatapathConfig &config() const { return cfg_; }
    const std::string &name() const { return cfg_.name; }

    int clusters() const { return cfg_.clusters; }
    int slotsPerCluster() const { return cfg_.cluster.issueSlots; }
    int registersPerCluster() const { return cfg_.cluster.registers; }
    int icacheCapacity() const { return cfg_.icacheInstructions; }
    int icacheRefillCycles() const { return cfg_.icacheRefillCycles; }
    int crossbarPortsPerCluster() const
    {
        return cfg_.crossbarPortsPerCluster;
    }
    int memBanks() const { return cfg_.cluster.memBanks; }
    int branchDelaySlots() const { return cfg_.branchDelaySlots(); }
    int loadUseDelay() const { return cfg_.loadUseDelay(); }
    bool complexAddressing() const
    {
        return cfg_.addressing == AddressingModes::Complex;
    }
    bool hasMul16() const
    {
        return cfg_.multiplier == MultiplierKind::Mul16x16Pipelined;
    }
    bool hasAbsDiff() const { return cfg_.cluster.hasAbsDiff; }

    /** Local data-RAM words per bank (16-bit words). */
    int memWordsPerBank() const
    {
        return cfg_.cluster.localMemBytes / cfg_.cluster.memBanks / 2;
    }

    /** Per-slot capabilities (identical across clusters). */
    const std::vector<SlotCaps> &slotCaps() const { return slots_; }

    /** Whether the datapath implements this operation at all. */
    bool canExecute(const Operation &op) const;

    /**
     * Number of address components of a memory op (0 for direct
     * immediate, 1 for register-indirect, 2 for indexed/base-disp).
     */
    static int addressComponents(const Operation &op);

    /** Whether the op's addressing mode is legal on this datapath. */
    bool addressingLegal(const Operation &op) const;

    /** Result latency in cycles. */
    int latency(const Operation &op) const;

    /** Latency functor for dependence-graph construction. */
    LatencyFn latencyFn() const;

    /** Whether a slot can issue the op (capability, not conflicts). */
    bool slotAllows(int slot, const Operation &op) const;

  private:
    DatapathConfig cfg_;
    std::vector<SlotCaps> slots_;
};

} // namespace vvsp

#endif // VVSP_ARCH_MACHINE_MODEL_HH
