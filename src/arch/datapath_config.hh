/**
 * @file
 * Architectural parameter set of a candidate VLIW VSP datapath
 * (paper Sec. 3.2).
 *
 * A datapath is a ring of identical functional-unit clusters around a
 * central crossbar. Every architectural knob the paper varies is a
 * field here; the seven named models of Tables 1-2 are built by
 * factories in arch/models.hh.
 */

#ifndef VVSP_ARCH_DATAPATH_CONFIG_HH
#define VVSP_ARCH_DATAPATH_CONFIG_HH

#include <string>

namespace vvsp
{

/** Load/store address modes supported by the datapath. */
enum class AddressingModes
{
    Simple,  ///< direct and register-indirect only.
    Complex, ///< adds indexed (reg+reg) and base-displacement.
};

/** Multiplier implementation choice (Sec. 3.4.3, Table 2). */
enum class MultiplierKind
{
    Mul8x8,           ///< single-cycle 8x8 multiplier.
    Mul16x16Pipelined ///< 2-stage 16x16; 16 bits of result per cycle.
};

/** Per-cluster resources. */
struct ClusterConfig
{
    /** Operations issued per cycle by this cluster. */
    int issueSlots = 4;
    /** Number of ALUs ("more FUs than slots keeps utilization high"). */
    int numAlus = 4;
    /** Number of multipliers. */
    int numMultipliers = 1;
    /** Number of barrel shifters. */
    int numShifters = 1;
    /** Number of load/store units. */
    int numLoadStoreUnits = 1;
    /** 16-bit registers in the local register file. */
    int registers = 128;
    /** Register-file ports (3 per issue slot). */
    int regFilePorts = 12;
    /** Total local data RAM in bytes (double-buffered). */
    int localMemBytes = 32 * 1024;
    /** Independent memory banks (address spaces) in the cluster. */
    int memBanks = 1;
    /** Ports per memory bank (2 for the dual-ported ablation). */
    int memPortsPerBank = 1;
    /** VLSI module granularity the RAM is composed from (bytes). */
    int memModuleBytes = 2048;
    /** Use the speed-binned dense cell (I2C16S5's single 16 KB). */
    bool fastMemoryCell = false;
    /** One ALU implements the absolute-difference special op. */
    bool hasAbsDiff = false;

    bool operator==(const ClusterConfig &) const = default;
};

/** Complete datapath description. */
struct DatapathConfig
{
    /** Model name, e.g. "I4C8S4". */
    std::string name;
    /** Number of identical clusters. */
    int clusters = 8;
    /** Per-cluster resources. */
    ClusterConfig cluster;
    /** Pipeline depth: 4 (IF/OF/EX/WB) or 5 (adds a MEM stage). */
    int pipelineStages = 4;
    /** Supported addressing modes. */
    AddressingModes addressing = AddressingModes::Simple;
    /** Multiplier implementation. */
    MultiplierKind multiplier = MultiplierKind::Mul8x8;
    /** Crossbar ports per cluster (1 per slot on I4C8*, 1 on I2C16*). */
    int crossbarPortsPerCluster = 4;
    /** On-chip instruction-cache capacity in long instructions. */
    int icacheInstructions = 1024;
    /** Cycles to refill the icache on a miss (Sec. 3.2: ">100"). */
    int icacheRefillCycles = 128;
    /** Crossbar driver width (um) from the Fig 2 sweep. */
    double crossbarDriverUm = 5.1;
    /**
     * Multiplier pipeline depth. The 16-cluster models must pipeline
     * even the 8x8 multiplier to two stages to reach their clock
     * (Sec. 3.2); the 16x16 multiplier is always 2-stage.
     */
    int multiplyStages = 1;

    /** Total issue slots across the machine (plus the control slot). */
    int totalIssueSlots() const { return clusters * cluster.issueSlots; }

    /** Total crossbar ports (switch size). */
    int crossbarPorts() const
    {
        return clusters * crossbarPortsPerCluster;
    }

    /** Load-use delay in cycles (1 with the 5-stage pipeline). */
    int loadUseDelay() const { return pipelineStages >= 5 ? 1 : 0; }

    /**
     * Branch delay slots exposed to the scheduler. Branches resolve
     * in the operand-fetch/decode stage (the compare value arrives
     * through the bypass network), so both pipelines expose a single
     * delay slot - consistent with the paper's sequential rows being
     * identical across the 4- and 5-stage models.
     */
    int branchDelaySlots() const { return 1; }

    /** Multiplier latency in cycles. */
    int multiplyLatency() const { return multiplyStages; }

    /**
     * Check internal consistency; returns the first problem as a
     * human-readable message, or "" when the config is valid. Lets
     * file-loaded machines be rejected with a diagnostic instead of
     * killing the process.
     */
    std::string validationError() const;

    /** Validate internal consistency; fatal() on user error. */
    void validate() const;

    bool operator==(const DatapathConfig &) const = default;
};

} // namespace vvsp

#endif // VVSP_ARCH_DATAPATH_CONFIG_HH
