#include "arch/config_json.hh"

#include <charconv>
#include <fstream>
#include <sstream>

#include "support/failpoint.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace vvsp
{

namespace
{

/** Shortest decimal form that round-trips the double exactly. */
std::string
numberStr(double v)
{
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    vvsp_assert(ec == std::errc(), "double formatting failed");
    return std::string(buf, end);
}

const char *
addressingStr(AddressingModes m)
{
    return m == AddressingModes::Complex ? "complex" : "simple";
}

const char *
multiplierStr(MultiplierKind m)
{
    return m == MultiplierKind::Mul16x16Pipelined
               ? "mul16x16_pipelined"
               : "mul8x8";
}

/**
 * Emit every architectural field in canonical order. `indent` is ""
 * for the compact single-line key form, or the unit of
 * pretty-printing indentation. The display name is the caller's
 * business.
 */
void
appendFields(std::ostream &os, const DatapathConfig &cfg,
             const std::string &indent)
{
    const std::string sep = indent.empty() ? " " : "\n" + indent;
    const std::string sep2 =
        indent.empty() ? " " : "\n" + indent + indent;
    const ClusterConfig &cl = cfg.cluster;
    os << sep << "\"clusters\": " << cfg.clusters << ',';
    os << sep << "\"pipeline_stages\": " << cfg.pipelineStages << ',';
    os << sep << "\"addressing\": \"" << addressingStr(cfg.addressing)
       << "\",";
    os << sep << "\"multiplier\": \"" << multiplierStr(cfg.multiplier)
       << "\",";
    os << sep << "\"multiply_stages\": " << cfg.multiplyStages << ',';
    os << sep << "\"crossbar_ports_per_cluster\": "
       << cfg.crossbarPortsPerCluster << ',';
    os << sep << "\"crossbar_driver_um\": "
       << numberStr(cfg.crossbarDriverUm) << ',';
    os << sep << "\"icache_instructions\": " << cfg.icacheInstructions
       << ',';
    os << sep << "\"icache_refill_cycles\": "
       << cfg.icacheRefillCycles << ',';
    os << sep << "\"cluster\": {";
    os << sep2 << "\"issue_slots\": " << cl.issueSlots << ',';
    os << sep2 << "\"alus\": " << cl.numAlus << ',';
    os << sep2 << "\"multipliers\": " << cl.numMultipliers << ',';
    os << sep2 << "\"shifters\": " << cl.numShifters << ',';
    os << sep2 << "\"load_store_units\": " << cl.numLoadStoreUnits
       << ',';
    os << sep2 << "\"registers\": " << cl.registers << ',';
    os << sep2 << "\"reg_file_ports\": " << cl.regFilePorts << ',';
    os << sep2 << "\"local_mem_bytes\": " << cl.localMemBytes << ',';
    os << sep2 << "\"mem_banks\": " << cl.memBanks << ',';
    os << sep2 << "\"mem_ports_per_bank\": " << cl.memPortsPerBank
       << ',';
    os << sep2 << "\"mem_module_bytes\": " << cl.memModuleBytes
       << ',';
    os << sep2 << "\"fast_memory_cell\": "
       << (cl.fastMemoryCell ? "true" : "false") << ',';
    os << sep2 << "\"has_abs_diff\": "
       << (cl.hasAbsDiff ? "true" : "false");
    os << sep << "}";
}

const char *const kTopLevelKeys[] = {
    "name",
    "clusters",
    "pipeline_stages",
    "addressing",
    "multiplier",
    "multiply_stages",
    "crossbar_ports_per_cluster",
    "crossbar_driver_um",
    "icache_instructions",
    "icache_refill_cycles",
    "cluster",
};

const char *const kClusterKeys[] = {
    "issue_slots",
    "alus",
    "multipliers",
    "shifters",
    "load_store_units",
    "registers",
    "reg_file_ports",
    "local_mem_bytes",
    "mem_banks",
    "mem_ports_per_bank",
    "mem_module_bytes",
    "fast_memory_cell",
    "has_abs_diff",
};

/** Field-by-field reader that stops at the first error. */
class ConfigReader
{
  public:
    explicit ConfigReader(std::string &error) : error_(error) {}

    bool ok() const { return error_.empty(); }

    void
    intField(const json::Value &obj, const char *key, int &out)
    {
        const json::Value *v = obj.find(key);
        if (!v || !ok())
            return;
        if (!v->isIntegral()) {
            error_ = format("\"%s\" wants an integer", key);
            return;
        }
        out = static_cast<int>(v->asNumber());
    }

    void
    doubleField(const json::Value &obj, const char *key, double &out)
    {
        const json::Value *v = obj.find(key);
        if (!v || !ok())
            return;
        if (!v->isNumber()) {
            error_ = format("\"%s\" wants a number", key);
            return;
        }
        out = v->asNumber();
    }

    void
    boolField(const json::Value &obj, const char *key, bool &out)
    {
        const json::Value *v = obj.find(key);
        if (!v || !ok())
            return;
        if (!v->isBool()) {
            error_ = format("\"%s\" wants true or false", key);
            return;
        }
        out = v->asBool();
    }

    void
    stringField(const json::Value &obj, const char *key,
                std::string &out)
    {
        const json::Value *v = obj.find(key);
        if (!v || !ok())
            return;
        if (!v->isString()) {
            error_ = format("\"%s\" wants a string", key);
            return;
        }
        out = v->asString();
    }

    /** Reject members of `obj` outside the known-key list. */
    template <size_t N>
    void
    knownKeys(const json::Value &obj, const char *const (&keys)[N],
              const char *where)
    {
        if (!ok())
            return;
        for (const auto &[key, value] : obj.members()) {
            (void)value;
            bool known = false;
            for (const char *k : keys)
                known = known || key == k;
            if (!known) {
                error_ = format("unknown %s key \"%s\"", where,
                                key.c_str());
                return;
            }
        }
    }

  private:
    std::string &error_;
};

} // anonymous namespace

std::string
configToJson(const DatapathConfig &cfg)
{
    std::ostringstream os;
    os << "{\n  \"name\": \"" << json::escape(cfg.name) << "\",";
    appendFields(os, cfg, "  ");
    os << "\n}\n";
    return os.str();
}

std::string
canonicalMachineKey(const DatapathConfig &cfg)
{
    std::ostringstream os;
    os << '{';
    appendFields(os, cfg, "");
    os << " }";
    return os.str();
}

std::optional<DatapathConfig>
configFromJson(const std::string &text, std::string *error,
               const std::string &fallback_name)
{
    std::string err;
    json::Value doc;
    if (!json::parse(text, doc, err)) {
        if (error)
            *error = "malformed JSON: " + err;
        return std::nullopt;
    }
    if (!doc.isObject()) {
        if (error)
            *error = "machine document must be a JSON object";
        return std::nullopt;
    }

    DatapathConfig cfg;
    cfg.name = fallback_name;
    std::string addressing = addressingStr(cfg.addressing);
    std::string multiplier = multiplierStr(cfg.multiplier);

    ConfigReader rd(err);
    rd.knownKeys(doc, kTopLevelKeys, "machine");
    rd.stringField(doc, "name", cfg.name);
    rd.intField(doc, "clusters", cfg.clusters);
    rd.intField(doc, "pipeline_stages", cfg.pipelineStages);
    rd.stringField(doc, "addressing", addressing);
    rd.stringField(doc, "multiplier", multiplier);
    rd.intField(doc, "multiply_stages", cfg.multiplyStages);
    rd.intField(doc, "crossbar_ports_per_cluster",
                cfg.crossbarPortsPerCluster);
    rd.doubleField(doc, "crossbar_driver_um", cfg.crossbarDriverUm);
    rd.intField(doc, "icache_instructions", cfg.icacheInstructions);
    rd.intField(doc, "icache_refill_cycles", cfg.icacheRefillCycles);

    const json::Value *cluster = doc.find("cluster");
    if (cluster && err.empty()) {
        if (!cluster->isObject()) {
            err = "\"cluster\" wants an object";
        } else {
            ClusterConfig &c = cfg.cluster;
            rd.knownKeys(*cluster, kClusterKeys, "cluster");
            rd.intField(*cluster, "issue_slots", c.issueSlots);
            rd.intField(*cluster, "alus", c.numAlus);
            rd.intField(*cluster, "multipliers", c.numMultipliers);
            rd.intField(*cluster, "shifters", c.numShifters);
            rd.intField(*cluster, "load_store_units",
                        c.numLoadStoreUnits);
            rd.intField(*cluster, "registers", c.registers);
            rd.intField(*cluster, "reg_file_ports", c.regFilePorts);
            rd.intField(*cluster, "local_mem_bytes", c.localMemBytes);
            rd.intField(*cluster, "mem_banks", c.memBanks);
            rd.intField(*cluster, "mem_ports_per_bank",
                        c.memPortsPerBank);
            rd.intField(*cluster, "mem_module_bytes",
                        c.memModuleBytes);
            rd.boolField(*cluster, "fast_memory_cell",
                         c.fastMemoryCell);
            rd.boolField(*cluster, "has_abs_diff", c.hasAbsDiff);
        }
    }

    if (err.empty()) {
        if (addressing == "simple") {
            cfg.addressing = AddressingModes::Simple;
        } else if (addressing == "complex") {
            cfg.addressing = AddressingModes::Complex;
        } else {
            err = format("\"addressing\" must be \"simple\" or "
                         "\"complex\", got \"%s\"",
                         addressing.c_str());
        }
    }
    if (err.empty()) {
        if (multiplier == "mul8x8") {
            cfg.multiplier = MultiplierKind::Mul8x8;
        } else if (multiplier == "mul16x16_pipelined") {
            cfg.multiplier = MultiplierKind::Mul16x16Pipelined;
        } else {
            err = format("\"multiplier\" must be \"mul8x8\" or "
                         "\"mul16x16_pipelined\", got \"%s\"",
                         multiplier.c_str());
        }
    }
    if (err.empty())
        err = cfg.validationError();
    if (!err.empty()) {
        if (error)
            *error = err;
        return std::nullopt;
    }
    return cfg;
}

std::optional<DatapathConfig>
loadMachineFile(const std::string &path, std::string *error)
{
    if (failpoint::evaluate("config/machine_io")) {
        if (error)
            *error = "simulated I/O failure reading '" + path + "'";
        return std::nullopt;
    }
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open machine file '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();

    // Basename without extension names an anonymous machine.
    std::string stem = path;
    size_t slash = stem.find_last_of("/\\");
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        stem = stem.substr(0, dot);

    auto cfg = configFromJson(text.str(), error, stem);
    if (!cfg && error)
        *error = path + ": " + *error;
    return cfg;
}

} // namespace vvsp
